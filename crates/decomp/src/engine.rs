//! The decompression engine: executes a four-stage configuration, by
//! default through a compiled straight-line plan (see [`crate::compile`])
//! with the original interpreter retained as a switchable oracle.

use crate::compile::CompiledProgram;
use crate::config::EngineConfig;
use crate::extract::Extractor;
use crate::program::ExecError;
use crate::schemes;
use boss_compress::{BlockInfo, Scheme};
use std::collections::HashMap;
use std::sync::Arc;

/// Depth of the hardware pipeline; added once per block to the cycle count.
const PIPELINE_FILL_CYCLES: u64 = 4;

/// Errors produced by the engine.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EngineError {
    /// Malformed or truncated encoded data.
    Codec(boss_compress::Error),
    /// The stage-2 program faulted.
    Exec(ExecError),
    /// The program consumed far more units than any valid encoding could
    /// need without producing the requested values (a stall / livelock
    /// guard for misprogrammed datapaths).
    Stall {
        /// Values produced before the guard tripped.
        produced: usize,
        /// Values requested.
        requested: usize,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Codec(e) => write!(f, "codec error: {e}"),
            EngineError::Exec(e) => write!(f, "{e}"),
            EngineError::Stall {
                produced,
                requested,
            } => write!(
                f,
                "decompression stalled after producing {produced} of {requested} values"
            ),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Codec(e) => Some(e),
            EngineError::Exec(e) => Some(e),
            EngineError::Stall { .. } => None,
        }
    }
}

impl From<boss_compress::Error> for EngineError {
    fn from(e: boss_compress::Error) -> Self {
        EngineError::Codec(e)
    }
}

impl From<ExecError> for EngineError {
    fn from(e: ExecError) -> Self {
        EngineError::Exec(e)
    }
}

/// Output of one block decode: the values plus the cycle cost the timing
/// model charges for it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decoded {
    /// Decoded values (d-gaps, or docIDs after stage 4).
    pub values: Vec<u32>,
    /// Engine cycles consumed (one per extraction unit, plus pipeline
    /// fill, plus one per exception patch).
    pub cycles: u64,
}

/// A configured decompression module.
///
/// Cheap to clone; holds the configuration plus a shared reference to its
/// compiled plan. Decoding runs the compiled plan unless
/// [`DecompEngine::with_interpreter`] selected the interpreter oracle.
#[derive(Debug, Clone, PartialEq)]
pub struct DecompEngine {
    config: EngineConfig,
    plan: Arc<CompiledProgram>,
    interpret: bool,
}

impl DecompEngine {
    /// Wraps a parsed configuration (the stage-2 program is re-validated)
    /// and compiles its stage-2 plan, hitting the process-wide plan cache
    /// for configurations seen before.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Exec`] if the program does not validate.
    pub fn new(config: EngineConfig) -> Result<Self, EngineError> {
        config.program.validate()?;
        let plan = crate::compile::plan_for(&config)?;
        Ok(DecompEngine {
            config,
            plan,
            interpret: false,
        })
    }

    /// Parses a configuration file and wraps it.
    ///
    /// # Errors
    ///
    /// Returns the parse error formatted as an execution fault.
    pub fn from_config_text(text: &str) -> Result<Self, crate::ParseError> {
        let config = EngineConfig::parse(text)?;
        Self::new(config).map_err(|e| crate::ParseError {
            line: 0,
            reason: e.to_string(),
        })
    }

    /// The engine programmed for one of the five stock schemes, using the
    /// shipped configuration files in [`schemes`].
    ///
    /// # Errors
    ///
    /// Returns a parse error only if the embedded configuration is broken
    /// (guarded by tests).
    pub fn for_scheme(scheme: Scheme) -> Result<Self, crate::ParseError> {
        Self::from_config_text(schemes::config_text(scheme))
    }

    /// The active configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Selects the execution path: `true` runs the stage-2 program
    /// through the original interpreter (the correctness oracle), `false`
    /// (the default) runs the compiled plan.
    #[must_use]
    pub fn with_interpreter(mut self, interpret: bool) -> Self {
        self.interpret = interpret;
        self
    }

    /// Whether this engine runs the interpreter oracle instead of the
    /// compiled plan.
    pub fn is_interpreted(&self) -> bool {
        self.interpret
    }

    /// Optimization statistics of the compiled stage-2 plan.
    pub fn plan_stats(&self) -> crate::compile::PlanStats {
        self.plan.stats()
    }

    /// Decodes one block to its raw encoded values (gaps / tf-minus-one),
    /// without stage 4.
    ///
    /// # Errors
    ///
    /// Propagates codec truncation/corruption, program faults, and the
    /// stall guard.
    pub fn decode(&self, data: &[u8], info: &BlockInfo) -> Result<Decoded, EngineError> {
        let mut values = Vec::new();
        let cycles = self.decode_into(data, info, &mut values)?;
        Ok(Decoded { values, cycles })
    }

    /// Decodes one block, appending its values to `out`, and returns the
    /// cycle cost. Identical semantics (values, errors, cycles) to
    /// [`DecompEngine::decode`] without allocating a fresh vector.
    ///
    /// On error, `out` may retain values produced before the fault.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DecompEngine::decode`].
    pub fn decode_into(
        &self,
        data: &[u8],
        info: &BlockInfo,
        out: &mut Vec<u32>,
    ) -> Result<u64, EngineError> {
        // Reject corrupt descriptors before sizing anything from them.
        let count = boss_compress::check_count(info)?;
        let exc_off = info.exception_offset as usize;
        // With exceptions enabled the packed area ends where the patch
        // area begins; otherwise the whole slice is payload.
        let payload: &[u8] = if self.config.exceptions.enabled {
            data.get(..exc_off).ok_or(boss_compress::Error::Truncated {
                have: data.len(),
                need: exc_off,
            })?
        } else {
            data
        };

        let mut extractor = Extractor::new(self.config.extractor.kind, payload, *info);
        let base = out.len();
        out.reserve(count);
        let target = base + count;
        // VB is the worst stock case at 5 units/value; 64 gives a generous
        // margin for custom programs while still catching livelock.
        let unit_limit = (count as u64 + 1) * 64;
        if self.interpret {
            // Oracle path: the original statement-walking interpreter,
            // with the wire environment hoisted out of the unit loop.
            let program = &self.config.program;
            let mut state = program.fresh_state();
            let mut wires = HashMap::new();
            while out.len() < target {
                if extractor.units() >= unit_limit {
                    return Err(EngineError::Stall {
                        produced: out.len() - base,
                        requested: count,
                    });
                }
                let unit = extractor.next_unit()?;
                if let Some(v) = program.step_in(unit, &mut state, &mut wires)? {
                    out.push(v);
                }
            }
        } else {
            let plan = &*self.plan;
            let mut state = plan.new_state();
            while out.len() < target {
                if extractor.units() >= unit_limit {
                    return Err(EngineError::Stall {
                        produced: out.len() - base,
                        requested: count,
                    });
                }
                let unit = extractor.next_unit()?;
                if let Some(v) = plan.step(unit, &mut state) {
                    out.push(v);
                }
            }
        }
        let mut cycles = extractor.units() + PIPELINE_FILL_CYCLES;

        if self.config.exceptions.enabled {
            let patch = data.get(exc_off..).ok_or(boss_compress::Error::Truncated {
                have: data.len(),
                need: exc_off,
            })?;
            if patch.len() % 6 != 0 {
                return Err(boss_compress::Error::Corrupt {
                    reason: "exception area misaligned",
                }
                .into());
            }
            let b = u32::from(info.bit_width);
            for chunk in patch.chunks_exact(6) {
                let idx = u16::from_le_bytes([chunk[0], chunk[1]]) as usize;
                let high = u32::from_le_bytes([chunk[2], chunk[3], chunk[4], chunk[5]]);
                if idx >= count {
                    return Err(boss_compress::Error::Corrupt {
                        reason: "exception index out of range",
                    }
                    .into());
                }
                if b < 32 {
                    out[base + idx] |= high << b;
                }
                cycles += 1;
            }
        }

        Ok(cycles)
    }

    /// Decodes one block and applies stage 4: values become docIDs by
    /// prefix-summing from `base` (0 for the first block of a list, the
    /// previous block's last docID otherwise).
    ///
    /// If the configuration has `UseDelta = 0`, `base` is ignored and the
    /// values are returned as-is.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DecompEngine::decode`].
    pub fn decode_docids(
        &self,
        data: &[u8],
        info: &BlockInfo,
        base: u32,
    ) -> Result<Decoded, EngineError> {
        let mut values = Vec::new();
        let cycles = self.decode_docids_into(data, info, base, &mut values)?;
        Ok(Decoded { values, cycles })
    }

    /// Appending variant of [`DecompEngine::decode_docids`]: decoded
    /// docIDs are pushed onto `out`, and the cycle cost is returned.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DecompEngine::decode`].
    pub fn decode_docids_into(
        &self,
        data: &[u8],
        info: &BlockInfo,
        base: u32,
        out: &mut Vec<u32>,
    ) -> Result<u64, EngineError> {
        let start = out.len();
        let cycles = self.decode_into(data, info, out)?;
        if self.config.delta.use_delta {
            let mut prev = base;
            for v in &mut out[start..] {
                let doc = prev.wrapping_add(*v);
                *v = doc;
                prev = doc;
            }
        }
        Ok(cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;
    use crate::{DeltaConfig, ExceptionConfig, ExtractorConfig, ExtractorKind};
    use boss_compress::codec_for;

    fn bp_engine(delta: bool) -> DecompEngine {
        DecompEngine::new(EngineConfig {
            extractor: ExtractorConfig {
                kind: ExtractorKind::FixedWidth,
            },
            program: Program::identity(),
            exceptions: ExceptionConfig { enabled: false },
            delta: DeltaConfig { use_delta: delta },
        })
        .unwrap()
    }

    #[test]
    fn bp_identity_decode() {
        let gaps = [7u32, 0, 3, 900];
        let mut data = Vec::new();
        let info = codec_for(Scheme::Bp).encode(&gaps, &mut data).unwrap();
        let out = bp_engine(false).decode(&data, &info).unwrap();
        assert_eq!(out.values, gaps);
        assert_eq!(out.cycles, 4 + PIPELINE_FILL_CYCLES);
    }

    #[test]
    fn stage4_prefix_sum() {
        let gaps = [5u32, 2, 1];
        let mut data = Vec::new();
        let info = codec_for(Scheme::Bp).encode(&gaps, &mut data).unwrap();
        let out = bp_engine(true).decode_docids(&data, &info, 100).unwrap();
        assert_eq!(out.values, vec![105, 107, 108]);
    }

    #[test]
    fn stall_guard_trips_on_never_valid_program() {
        // A program that never asserts Output.valid on width-0 data would
        // spin forever without the guard.
        let cfg = EngineConfig {
            extractor: ExtractorConfig {
                kind: ExtractorKind::FixedWidth,
            },
            program: {
                let mut p = Program::identity();
                // Overwrite validity with constant 0.
                p.statements[1].args = vec![crate::program::Operand::Literal(0)];
                p
            },
            exceptions: ExceptionConfig { enabled: false },
            delta: DeltaConfig::default(),
        };
        let engine = DecompEngine::new(cfg).unwrap();
        let info = BlockInfo {
            count: 4,
            bit_width: 0,
            exception_offset: 0,
        };
        let err = engine.decode(&[], &info).unwrap_err();
        assert!(matches!(err, EngineError::Stall { .. }));
    }

    #[test]
    fn oversized_count_rejected_without_reserving() {
        let engine = bp_engine(false);
        let info = BlockInfo {
            count: u16::MAX,
            bit_width: 1,
            exception_offset: 0,
        };
        let err = engine.decode(&[0u8; 64], &info).unwrap_err();
        assert!(matches!(
            err,
            EngineError::Codec(boss_compress::Error::Corrupt { .. })
        ));
    }

    #[test]
    fn error_display_chain() {
        let e = EngineError::Codec(boss_compress::Error::Corrupt { reason: "x" });
        assert!(e.to_string().contains("codec"));
        assert!(std::error::Error::source(&e).is_some());
        let e = EngineError::Stall {
            produced: 1,
            requested: 9,
        };
        assert!(e.to_string().contains("stalled"));
    }
}
