//! Shipped configuration files for the five stock schemes.
//!
//! Each configuration is a text file in the Figure-8 language, parsed at
//! engine construction — so the parser itself is on the hot path of every
//! test, exactly as a user-supplied scheme would be. Equivalence against
//! the software decoders of `boss-compress` is enforced by the tests in
//! `tests/equivalence.rs`.

use boss_compress::Scheme;

/// Bit-Packing: fixed-width extraction, identity manipulation.
pub const BP: &str = r"
// Stage 1: fixed-width extractor, width from block metadata
Extractor[0].use = 1
Extractor[1].use = 0
Extractor[2].use = 0
// Stage 2: passthrough
Output := Input
Output.valid := 1
// Stage 3
UseExceptions = 0
// Stage 4
UseDelta = 1
";

/// VariableByte: byte extraction; stage 2 reassembles 7-bit groups
/// (LSB-first, matching the `boss-compress` VB layout) and asserts
/// validity on the terminator bit.
pub const VB: &str = r"
// Stage 1: byte-header extractor
Extractor[0].use = 0
Extractor[1].use = 1
Extractor[2].use = 0
Extractor[1].headerLength = 1
// Stage 2
RegInit( Acc, 0, flush )
RegInit( Shift, 0, flush )
flush := SHR(Input, 0x7)
pay := AND(Input, 0x7F)
shifted := SHL(pay, Shift)
sum := ADD(Acc, shifted)
Acc := sum
Shift := ADD(Shift, 0x7)
Output := sum
Output.valid := flush
// Stage 3
ExceptionValue = ExceptionIndex = 0
// Stage 4
UseDelta = 1
";

/// OptPForDelta: fixed-width extraction of the packed area, identity
/// manipulation, exception patching enabled.
pub const OPTPFD: &str = r"
// Stage 1
Extractor[0].use = 1
Extractor[1].use = 0
Extractor[2].use = 0
// Stage 2: passthrough
Output := Input
Output.valid := 1
// Stage 3: patch exceptions from the block's patch area
UseExceptions = 1
// Stage 4
UseDelta = 1
";

/// Simple16: selector extraction over 32-bit words.
pub const S16: &str = r"
// Stage 1
Extractor[0].use = 0
Extractor[1].use = 0
Extractor[2].use = 1
Extractor[2].wordBits = 32
// Stage 2: passthrough
Output := Input
Output.valid := 1
// Stage 3
UseExceptions = 0
// Stage 4
UseDelta = 1
";

/// Simple8b: selector extraction over 64-bit words.
pub const S8B: &str = r"
// Stage 1
Extractor[0].use = 0
Extractor[1].use = 0
Extractor[2].use = 1
Extractor[2].wordBits = 64
// Stage 2: passthrough
Output := Input
Output.valid := 1
// Stage 3
UseExceptions = 0
// Stage 4
UseDelta = 1
";

/// Group-Varint (extension): a fourth extractor flavor demonstrates that
/// new schemes slot in without touching stages 2-4.
pub const GVB: &str = r"
// Stage 1
Extractor[0].use = 0
Extractor[1].use = 0
Extractor[2].use = 0
Extractor[3].use = 1
// Stage 2: passthrough
Output := Input
Output.valid := 1
// Stage 3
UseExceptions = 0
// Stage 4
UseDelta = 1
";

/// The configuration text for a stock scheme.
pub fn config_text(scheme: Scheme) -> &'static str {
    match scheme {
        Scheme::Bp => BP,
        Scheme::Vb => VB,
        Scheme::OptPfd => OPTPFD,
        Scheme::S16 => S16,
        Scheme::S8b => S8B,
        Scheme::GroupVarint => GVB,
    }
}

#[cfg(test)]
mod tests {
    use crate::DecompEngine;
    use boss_compress::ALL_SCHEMES;

    #[test]
    fn all_stock_configs_parse() {
        for s in ALL_SCHEMES {
            let engine = DecompEngine::for_scheme(s).unwrap();
            assert!(engine.config().delta.use_delta, "{s}");
        }
    }

    #[test]
    fn only_pfd_uses_exceptions() {
        for s in ALL_SCHEMES {
            let engine = DecompEngine::for_scheme(s).unwrap();
            assert_eq!(
                engine.config().exceptions.enabled,
                s == boss_compress::Scheme::OptPfd,
                "{s}"
            );
        }
    }
}
