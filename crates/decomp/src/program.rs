//! The stage-2 programmable datapath: a register-transfer program over
//! wires and registers, interpreted once per extracted payload unit.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A primitive functional unit of the manipulation stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Logical shift right.
    Shr,
    /// Logical shift left.
    Shl,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// `MUX(cond, a, b)`: `a` if `cond != 0`, else `b`.
    Mux,
    /// Pass-through of a single operand.
    Id,
}

impl Op {
    /// Number of operands the unit takes.
    pub fn arity(self) -> usize {
        match self {
            Op::Mux => 3,
            Op::Id => 1,
            _ => 2,
        }
    }

    /// Parses an op mnemonic as written in config files
    /// (case-insensitive, without allocating).
    pub fn parse(s: &str) -> Option<Op> {
        const MNEMONICS: [(&str, Op); 9] = [
            ("SHR", Op::Shr),
            ("SHL", Op::Shl),
            ("AND", Op::And),
            ("OR", Op::Or),
            ("XOR", Op::Xor),
            ("ADD", Op::Add),
            ("SUB", Op::Sub),
            ("MUX", Op::Mux),
            ("ID", Op::Id),
        ];
        MNEMONICS
            .iter()
            .find(|(m, _)| s.eq_ignore_ascii_case(m))
            .map(|&(_, op)| op)
    }
}

/// An operand: a literal, a wire/register read, or the stage input.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Operand {
    /// Immediate constant.
    Literal(u32),
    /// Named wire or register.
    Name(String),
}

/// One connection: `dest := OP(args...)`, or a plain alias
/// `dest := name/literal`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Statement {
    /// Destination wire, register, `Output`, or `Output.valid`.
    pub dest: String,
    /// The functional unit.
    pub op: Op,
    /// Its operands.
    pub args: Vec<Operand>,
}

/// A register declaration: `RegInit(name, init, reset_signal)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegDecl {
    /// Register name.
    pub name: String,
    /// Initial (and reset) value.
    pub init: u32,
    /// Wire whose nonzero value re-initializes the register after the
    /// cycle; empty string means never reset.
    pub reset_signal: String,
}

/// The complete stage-2 program.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Register declarations.
    pub regs: Vec<RegDecl>,
    /// Statements, executed in order every cycle.
    pub statements: Vec<Statement>,
}

/// An execution fault (tests the validator missed, e.g. a read of a wire
/// never assigned).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError {
    /// Description of the fault.
    pub reason: String,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "stage-2 program fault: {}", self.reason)
    }
}

impl std::error::Error for ExecError {}

impl Program {
    /// The identity program: `Output := Input`, always valid.
    pub fn identity() -> Self {
        Program {
            regs: Vec::new(),
            statements: vec![
                Statement {
                    dest: "Output".into(),
                    op: Op::Id,
                    args: vec![Operand::Name("Input".into())],
                },
                Statement {
                    dest: "Output.valid".into(),
                    op: Op::Id,
                    args: vec![Operand::Literal(1)],
                },
            ],
        }
    }

    /// Statically checks the program: operand arity, reads of undefined
    /// wires, duplicate registers.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation found.
    pub fn validate(&self) -> Result<(), ExecError> {
        let mut defined: Vec<&str> = vec!["Input"];
        for r in &self.regs {
            if defined.contains(&r.name.as_str()) {
                return Err(ExecError {
                    reason: format!("duplicate definition of {}", r.name),
                });
            }
            defined.push(&r.name);
        }
        let reg_names: Vec<&str> = self.regs.iter().map(|r| r.name.as_str()).collect();
        let mut assigned: Vec<&str> = Vec::new();
        for st in &self.statements {
            if st.args.len() != st.op.arity() {
                return Err(ExecError {
                    reason: format!(
                        "{:?} takes {} operands, got {}",
                        st.op,
                        st.op.arity(),
                        st.args.len()
                    ),
                });
            }
            for a in &st.args {
                if let Operand::Name(n) = a {
                    let readable = n == "Input"
                        || reg_names.contains(&n.as_str())
                        || assigned.contains(&n.as_str());
                    if !readable {
                        return Err(ExecError {
                            reason: format!("read of undefined wire {n}"),
                        });
                    }
                }
            }
            if !reg_names.contains(&st.dest.as_str()) {
                assigned.push(&st.dest);
            }
        }
        // Reset signals must name assigned wires or registers.
        for r in &self.regs {
            if !r.reset_signal.is_empty()
                && !assigned.contains(&r.reset_signal.as_str())
                && !reg_names.contains(&r.reset_signal.as_str())
            {
                return Err(ExecError {
                    reason: format!(
                        "reset signal {} of register {} is never assigned",
                        r.reset_signal, r.name
                    ),
                });
            }
        }
        Ok(())
    }

    /// Creates the mutable register file for one execution.
    pub fn fresh_state(&self) -> RegFile {
        RegFile {
            values: self.regs.iter().map(|r| (r.name.clone(), r.init)).collect(),
        }
    }

    /// Runs one cycle with payload `input`, updating `state`. Returns
    /// `Some(value)` when `Output.valid` evaluated nonzero.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] on reads of undefined wires (a validated
    /// program cannot fault).
    pub fn step(&self, input: u32, state: &mut RegFile) -> Result<Option<u32>, ExecError> {
        self.step_in(input, state, &mut HashMap::new())
    }

    /// Like [`Program::step`], but reuses a caller-provided wire map so a
    /// block-decode loop does not rebuild the environment on every unit.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Program::step`].
    pub fn step_in<'p>(
        &'p self,
        input: u32,
        state: &mut RegFile,
        wires: &mut HashMap<&'p str, u32>,
    ) -> Result<Option<u32>, ExecError> {
        wires.clear();
        let read =
            |name: &str, wires: &HashMap<&str, u32>, state: &RegFile| -> Result<u32, ExecError> {
                if name == "Input" {
                    return Ok(input);
                }
                if let Some(&v) = wires.get(name) {
                    return Ok(v);
                }
                if let Some(v) = state.values.get(name) {
                    return Ok(*v);
                }
                Err(ExecError {
                    reason: format!("read of undefined wire {name}"),
                })
            };
        let eval =
            |a: &Operand, wires: &HashMap<&str, u32>, state: &RegFile| -> Result<u32, ExecError> {
                match a {
                    Operand::Literal(v) => Ok(*v),
                    Operand::Name(n) => read(n, wires, state),
                }
            };

        let mut reg_next: Vec<(usize, u32)> = Vec::new();
        let mut output = None;
        let mut valid = None;
        for st in &self.statements {
            let vals: Vec<u32> = st
                .args
                .iter()
                .map(|a| eval(a, wires, state))
                .collect::<Result<_, _>>()?;
            let v = match st.op {
                Op::Shr => vals[0].checked_shr(vals[1]).unwrap_or(0),
                Op::Shl => vals[0].checked_shl(vals[1]).unwrap_or(0),
                Op::And => vals[0] & vals[1],
                Op::Or => vals[0] | vals[1],
                Op::Xor => vals[0] ^ vals[1],
                Op::Add => vals[0].wrapping_add(vals[1]),
                Op::Sub => vals[0].wrapping_sub(vals[1]),
                Op::Mux => {
                    if vals[0] != 0 {
                        vals[1]
                    } else {
                        vals[2]
                    }
                }
                Op::Id => vals[0],
            };
            match st.dest.as_str() {
                "Output" => output = Some(v),
                "Output.valid" => valid = Some(v),
                dest => {
                    if let Some(i) = self.regs.iter().position(|r| r.name == dest) {
                        reg_next.push((i, v));
                    } else {
                        wires.insert(dest, v);
                    }
                }
            }
        }

        // Commit register writes (registers update at the clock edge).
        for (i, v) in reg_next {
            let name = &self.regs[i].name;
            *state.values.get_mut(name).expect("register exists") = v;
        }
        // Apply resets after commit, as a synchronous reset would.
        for r in &self.regs {
            if !r.reset_signal.is_empty() {
                let sig = if let Some(&v) = wires.get(r.reset_signal.as_str()) {
                    v
                } else {
                    state.values.get(&r.reset_signal).copied().unwrap_or(0)
                };
                if sig != 0 {
                    *state.values.get_mut(&r.name).expect("register exists") = r.init;
                }
            }
        }

        let is_valid = valid.unwrap_or(1) != 0;
        Ok(if is_valid { output } else { None })
    }
}

/// The register file of one running program instance.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegFile {
    values: HashMap<String, u32>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(n: &str) -> Operand {
        Operand::Name(n.into())
    }

    fn lit(v: u32) -> Operand {
        Operand::Literal(v)
    }

    #[test]
    fn identity_passes_through() {
        let p = Program::identity();
        p.validate().unwrap();
        let mut st = p.fresh_state();
        assert_eq!(p.step(42, &mut st).unwrap(), Some(42));
        assert_eq!(p.step(0, &mut st).unwrap(), Some(0));
    }

    #[test]
    fn accumulator_program() {
        // Running sum of inputs, always valid.
        let p = Program {
            regs: vec![RegDecl {
                name: "Acc".into(),
                init: 0,
                reset_signal: String::new(),
            }],
            statements: vec![
                Statement {
                    dest: "sum".into(),
                    op: Op::Add,
                    args: vec![name("Acc"), name("Input")],
                },
                Statement {
                    dest: "Acc".into(),
                    op: Op::Id,
                    args: vec![name("sum")],
                },
                Statement {
                    dest: "Output".into(),
                    op: Op::Id,
                    args: vec![name("sum")],
                },
            ],
        };
        p.validate().unwrap();
        let mut st = p.fresh_state();
        assert_eq!(p.step(1, &mut st).unwrap(), Some(1));
        assert_eq!(p.step(2, &mut st).unwrap(), Some(3));
        assert_eq!(p.step(4, &mut st).unwrap(), Some(7));
    }

    #[test]
    fn reset_reinitializes_register() {
        // Accumulate; reset when input has bit 7 set.
        let p = Program {
            regs: vec![RegDecl {
                name: "Acc".into(),
                init: 0,
                reset_signal: "flush".into(),
            }],
            statements: vec![
                Statement {
                    dest: "flush".into(),
                    op: Op::Shr,
                    args: vec![name("Input"), lit(7)],
                },
                Statement {
                    dest: "pay".into(),
                    op: Op::And,
                    args: vec![name("Input"), lit(0x7F)],
                },
                Statement {
                    dest: "sum".into(),
                    op: Op::Add,
                    args: vec![name("Acc"), name("pay")],
                },
                Statement {
                    dest: "Acc".into(),
                    op: Op::Id,
                    args: vec![name("sum")],
                },
                Statement {
                    dest: "Output".into(),
                    op: Op::Id,
                    args: vec![name("sum")],
                },
                Statement {
                    dest: "Output.valid".into(),
                    op: Op::Id,
                    args: vec![name("flush")],
                },
            ],
        };
        p.validate().unwrap();
        let mut st = p.fresh_state();
        assert_eq!(p.step(3, &mut st).unwrap(), None, "no terminator yet");
        assert_eq!(
            p.step(0x85, &mut st).unwrap(),
            Some(8),
            "3 + 5, terminator seen"
        );
        assert_eq!(
            p.step(0x81, &mut st).unwrap(),
            Some(1),
            "register was reset"
        );
    }

    #[test]
    fn mux_selects() {
        let p = Program {
            regs: vec![],
            statements: vec![Statement {
                dest: "Output".into(),
                op: Op::Mux,
                args: vec![name("Input"), lit(10), lit(20)],
            }],
        };
        p.validate().unwrap();
        let mut st = p.fresh_state();
        assert_eq!(p.step(1, &mut st).unwrap(), Some(10));
        assert_eq!(p.step(0, &mut st).unwrap(), Some(20));
    }

    #[test]
    fn validate_rejects_undefined_wire() {
        let p = Program {
            regs: vec![],
            statements: vec![Statement {
                dest: "Output".into(),
                op: Op::Id,
                args: vec![name("ghost")],
            }],
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_arity() {
        let p = Program {
            regs: vec![],
            statements: vec![Statement {
                dest: "Output".into(),
                op: Op::Add,
                args: vec![lit(1)],
            }],
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_duplicate_register() {
        let p = Program {
            regs: vec![
                RegDecl {
                    name: "R".into(),
                    init: 0,
                    reset_signal: String::new(),
                },
                RegDecl {
                    name: "R".into(),
                    init: 0,
                    reset_signal: String::new(),
                },
            ],
            statements: vec![],
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn shift_overflow_yields_zero() {
        let p = Program {
            regs: vec![],
            statements: vec![Statement {
                dest: "Output".into(),
                op: Op::Shl,
                args: vec![name("Input"), lit(40)],
            }],
        };
        let mut st = p.fresh_state();
        assert_eq!(p.step(1, &mut st).unwrap(), Some(0));
    }

    #[test]
    fn op_parse() {
        assert_eq!(Op::parse("shr"), Some(Op::Shr));
        assert_eq!(Op::parse("MUX"), Some(Op::Mux));
        assert_eq!(Op::parse("nope"), None);
        assert_eq!(Op::Mux.arity(), 3);
        assert_eq!(Op::Id.arity(), 1);
    }
}
