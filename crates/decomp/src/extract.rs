//! Stage 1: payload extraction from the serialized bitstream.
//!
//! Three extractor flavors cover the five schemes:
//! * fixed-width fields (BP, OptPFD's packed area),
//! * byte groups with continuation headers (VB),
//! * selector-described words (S16: 32-bit, S8b: 64-bit).
//!
//! Hardware-wise this stage is a fixed datapath with configurable
//! parameters (Section IV-C); here each flavor is a small state machine
//! that yields one payload unit per cycle.

use boss_compress::{BitReader, BlockInfo};
use serde::{Deserialize, Serialize};

use crate::engine::EngineError;

/// Which extractor flavor is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExtractorKind {
    /// Fixed-width fields; the width comes from the block metadata.
    FixedWidth,
    /// One byte per cycle (continuation handling happens in stage 2).
    ByteHeader,
    /// Selector-based 32-bit words (Simple16 layout table).
    Selector16,
    /// Selector-based 64-bit words (Simple8b layout table).
    Selector8b,
    /// Group-Varint: a 2-bit-per-value control byte describes the byte
    /// lengths of the next four values (extension scheme).
    GroupVarint,
}

/// Simple16 layouts as `(count, bits)` runs; identical to the encoder's.
const S16_LAYOUTS: [&[(u32, u32)]; 16] = [
    &[(28, 1)],
    &[(7, 2), (14, 1)],
    &[(7, 1), (7, 2), (7, 1)],
    &[(14, 1), (7, 2)],
    &[(14, 2)],
    &[(1, 4), (8, 3)],
    &[(1, 3), (4, 4), (3, 3)],
    &[(7, 4)],
    &[(4, 5), (2, 4)],
    &[(2, 4), (4, 5)],
    &[(3, 6), (2, 5)],
    &[(2, 5), (3, 6)],
    &[(4, 7)],
    &[(1, 10), (2, 9)],
    &[(2, 14)],
    &[(1, 28)],
];

/// Simple8b packed layouts for selectors 2..=15.
const S8B_PACKED: [(u32, u32); 14] = [
    (60, 1),
    (30, 2),
    (20, 3),
    (15, 4),
    (12, 5),
    (10, 6),
    (8, 7),
    (7, 8),
    (6, 10),
    (5, 12),
    (4, 15),
    (3, 20),
    (2, 30),
    (1, 60),
];

/// A running extractor over one block's data.
#[derive(Debug)]
pub(crate) struct Extractor<'a> {
    kind: ExtractorKind,
    data: &'a [u8],
    info: BlockInfo,
    pos: usize,
    bits: Option<BitReader<'a>>,
    /// Pending field values decoded from the current selector word.
    pending: Vec<u32>,
    pending_at: usize,
    /// Units produced so far (for cycle accounting).
    units: u64,
}

impl<'a> Extractor<'a> {
    pub(crate) fn new(kind: ExtractorKind, data: &'a [u8], info: BlockInfo) -> Self {
        let bits = matches!(kind, ExtractorKind::FixedWidth).then(|| BitReader::new(data));
        Extractor {
            kind,
            data,
            info,
            pos: 0,
            bits,
            pending: Vec::new(),
            pending_at: 0,
            units: 0,
        }
    }

    /// Units consumed so far; one unit is one extraction cycle.
    pub(crate) fn units(&self) -> u64 {
        self.units
    }

    /// Pulls the next payload unit.
    ///
    /// For `FixedWidth` a unit is one packed field; for `ByteHeader` one
    /// raw byte; for selectors one decoded field (the word fetch is
    /// amortized — hardware emits one field per cycle from a word buffer).
    pub(crate) fn next_unit(&mut self) -> Result<u32, EngineError> {
        self.units += 1;
        match self.kind {
            ExtractorKind::FixedWidth => {
                // `bit_width` comes from (possibly corrupt) block
                // metadata; the bit reader treats widths over 32 as a
                // programmer error, so gate it here as a typed error.
                if self.info.bit_width > 32 {
                    return Err(EngineError::Codec(boss_compress::Error::Corrupt {
                        reason: "field bit width exceeds 32",
                    }));
                }
                let r = self
                    .bits
                    .as_mut()
                    .expect("bit reader present for FixedWidth");
                r.read(u32::from(self.info.bit_width))
                    .map_err(EngineError::from)
            }
            ExtractorKind::ByteHeader => {
                let Some(&b) = self.data.get(self.pos) else {
                    return Err(EngineError::Codec(boss_compress::Error::Truncated {
                        have: self.data.len(),
                        need: self.pos + 1,
                    }));
                };
                self.pos += 1;
                Ok(u32::from(b))
            }
            ExtractorKind::Selector16 => {
                if self.pending_at == self.pending.len() {
                    self.refill_s16()?;
                }
                let v = self.pending[self.pending_at];
                self.pending_at += 1;
                Ok(v)
            }
            ExtractorKind::Selector8b => {
                if self.pending_at == self.pending.len() {
                    self.refill_s8b()?;
                }
                let v = self.pending[self.pending_at];
                self.pending_at += 1;
                Ok(v)
            }
            ExtractorKind::GroupVarint => {
                if self.pending_at == self.pending.len() {
                    self.refill_gvb()?;
                }
                let v = self.pending[self.pending_at];
                self.pending_at += 1;
                Ok(v)
            }
        }
    }

    fn refill_gvb(&mut self) -> Result<(), EngineError> {
        let Some(&ctrl) = self.data.get(self.pos) else {
            return Err(EngineError::Codec(boss_compress::Error::Truncated {
                have: self.data.len(),
                need: self.pos + 1,
            }));
        };
        self.pos += 1;
        self.pending.clear();
        self.pending_at = 0;
        for i in 0..4usize {
            let n = (((ctrl >> (i * 2)) & 0b11) + 1) as usize;
            let Some(bytes) = self.data.get(self.pos..self.pos + n) else {
                // A partial tail group is legal: the engine stops pulling
                // once it has `count` values, so only error if nothing was
                // produced from this control byte.
                if self.pending.is_empty() {
                    return Err(EngineError::Codec(boss_compress::Error::Truncated {
                        have: self.data.len(),
                        need: self.pos + n,
                    }));
                }
                return Ok(());
            };
            self.pos += n;
            let mut buf = [0u8; 4];
            buf[..n].copy_from_slice(bytes);
            self.pending.push(u32::from_le_bytes(buf));
        }
        Ok(())
    }

    fn refill_s16(&mut self) -> Result<(), EngineError> {
        let Some(bytes) = self.data.get(self.pos..self.pos + 4) else {
            return Err(EngineError::Codec(boss_compress::Error::Truncated {
                have: self.data.len(),
                need: self.pos + 4,
            }));
        };
        self.pos += 4;
        let word = u32::from_le_bytes(bytes.try_into().expect("4 bytes"));
        let sel = (word >> 28) as usize;
        self.pending.clear();
        self.pending_at = 0;
        let mut shift = 0u32;
        for &(n, bits) in S16_LAYOUTS[sel] {
            let mask = (1u32 << bits) - 1;
            for _ in 0..n {
                self.pending.push((word >> shift) & mask);
                shift += bits;
            }
        }
        Ok(())
    }

    fn refill_s8b(&mut self) -> Result<(), EngineError> {
        let Some(bytes) = self.data.get(self.pos..self.pos + 8) else {
            return Err(EngineError::Codec(boss_compress::Error::Truncated {
                have: self.data.len(),
                need: self.pos + 8,
            }));
        };
        self.pos += 8;
        let word = u64::from_le_bytes(bytes.try_into().expect("8 bytes"));
        let sel = (word >> 60) as usize;
        self.pending.clear();
        self.pending_at = 0;
        match sel {
            0 => self.pending.extend(std::iter::repeat_n(0u32, 240)),
            1 => self.pending.extend(std::iter::repeat_n(0u32, 120)),
            _ => {
                let (n, bits) = S8B_PACKED[sel - 2];
                let mask = (1u64 << bits) - 1;
                let mut shift = 0u32;
                for _ in 0..n {
                    self.pending.push(((word >> shift) & mask) as u32);
                    shift += bits;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boss_compress::{codec_for, Scheme};

    #[test]
    fn fixed_width_yields_packed_fields() {
        let values = [5u32, 1, 7, 0];
        let mut data = Vec::new();
        let info = codec_for(Scheme::Bp).encode(&values, &mut data).unwrap();
        let mut ex = Extractor::new(ExtractorKind::FixedWidth, &data, info);
        for &v in &values {
            assert_eq!(ex.next_unit().unwrap(), v);
        }
        assert_eq!(ex.units(), 4);
    }

    #[test]
    fn byte_header_yields_raw_bytes() {
        let data = [0x83u8, 0x05, 0x91];
        let info = BlockInfo {
            count: 2,
            bit_width: 0,
            exception_offset: 0,
        };
        let mut ex = Extractor::new(ExtractorKind::ByteHeader, &data, info);
        assert_eq!(ex.next_unit().unwrap(), 0x83);
        assert_eq!(ex.next_unit().unwrap(), 0x05);
        assert_eq!(ex.next_unit().unwrap(), 0x91);
        assert!(ex.next_unit().is_err());
    }

    #[test]
    fn selector16_matches_codec() {
        let values = [1u32, 3, 0, 200, 7, 7, 7, 100000];
        let mut data = Vec::new();
        let info = codec_for(Scheme::S16).encode(&values, &mut data).unwrap();
        let mut ex = Extractor::new(ExtractorKind::Selector16, &data, info);
        for &v in &values {
            assert_eq!(ex.next_unit().unwrap(), v);
        }
    }

    #[test]
    fn selector8b_matches_codec_including_zero_runs() {
        let mut values = vec![0u32; 240];
        values.extend([9, 8, u32::MAX]);
        let mut data = Vec::new();
        let info = codec_for(Scheme::S8b).encode(&values, &mut data).unwrap();
        let mut ex = Extractor::new(ExtractorKind::Selector8b, &data, info);
        for &v in &values {
            assert_eq!(ex.next_unit().unwrap(), v);
        }
    }

    #[test]
    fn truncated_selector_word() {
        let data = [0u8; 3];
        let info = BlockInfo {
            count: 5,
            bit_width: 0,
            exception_offset: 0,
        };
        let mut ex = Extractor::new(ExtractorKind::Selector16, &data, info);
        assert!(ex.next_unit().is_err());
    }
}
