//! Netlist compilation: lowers a validated stage-2 [`Program`] into a
//! specialized straight-line plan executed once per extracted unit.
//!
//! The interpreter in [`crate::program`] re-resolves wire names through a
//! string-keyed map and allocates per statement on every unit. The
//! compiler does all of that once per configuration:
//!
//! 1. **resolve** — wire/register names become dense slot indices; wires
//!    are renamed SSA-style so rebinding (`a := ...; a := ...`) costs
//!    nothing at run time and plain `ID` aliases are copy-propagated away;
//! 2. **fold** — operations whose operands are all literals are evaluated
//!    at compile time, `MUX` with a literal condition selects its arm, and
//!    shift-by-≥32 / and-with-0 style identities collapse;
//! 3. **DCE** — nets that never reach `Output`, `Output.valid`, or a live
//!    register (including its reset signal) are eliminated, with register
//!    liveness run to a fixpoint;
//! 4. **fuse** — single-use `SHR`-then-`AND` and `AND`-then-`SHL` chains
//!    with literal shift/mask become one compiled op;
//! 5. **order + emit** — statements are topologically ordered (stable
//!    Kahn, original order preserved among ready statements) and emitted
//!    as a flat `Vec<CompiledStmt>` over dense temporary slots.
//!
//! [`CompiledProgram::step`] is bit-equal to [`Program::step`] by
//! construction (enforced by proptests and the corruption harness) and is
//! infallible: a program that passed [`Program::validate`] cannot fault at
//! run time. Cycle accounting is untouched — the engine charges per
//! extracted unit, and compilation never changes how many units a block
//! consumes or whether a unit produces a value.
#![warn(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use crate::config::EngineConfig;
use crate::program::{ExecError, Op, Operand, Program};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// A compiled operand: where a value comes from at run time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Src {
    /// Compile-time constant.
    Lit(u32),
    /// The stage input (the extracted payload unit).
    Input,
    /// Register slot, read pre-commit (start-of-cycle value).
    Reg(u16),
    /// Temporary slot written earlier in the same cycle.
    Tmp(u32),
}

/// Where a compiled statement writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dst {
    /// Temporary slot.
    Tmp(u32),
    /// Next-state value of register slot (committed at cycle end).
    RegNext(u16),
    /// The `Output` port.
    Output,
    /// The `Output.valid` port.
    Valid,
}

/// A compiled functional unit. Base ops mirror [`Op`]; the fused variants
/// carry their literal shift/mask inline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CKind {
    Shr,
    Shl,
    And,
    Or,
    Xor,
    Add,
    Sub,
    Mux,
    Id,
    /// `(x >> shift) & mask`, with `shift < 32` guaranteed by folding.
    ShrAnd {
        shift: u32,
        mask: u32,
    },
    /// `(x & mask) << shift`, with `shift < 32` guaranteed by folding.
    AndShl {
        mask: u32,
        shift: u32,
    },
}

impl CKind {
    fn from_op(op: Op) -> CKind {
        match op {
            Op::Shr => CKind::Shr,
            Op::Shl => CKind::Shl,
            Op::And => CKind::And,
            Op::Or => CKind::Or,
            Op::Xor => CKind::Xor,
            Op::Add => CKind::Add,
            Op::Sub => CKind::Sub,
            Op::Mux => CKind::Mux,
            Op::Id => CKind::Id,
        }
    }

    /// How many of the three operand slots this kind reads.
    fn arg_count(self) -> usize {
        match self {
            CKind::Mux => 3,
            CKind::Id | CKind::ShrAnd { .. } | CKind::AndShl { .. } => 1,
            _ => 2,
        }
    }
}

/// One straight-line compiled statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CompiledStmt {
    kind: CKind,
    args: [Src; 3],
    dst: Dst,
}

/// How a compiled register resets after commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Reset {
    /// No reset signal.
    Never,
    /// Signal is a wire's final value this cycle (literal, input, or
    /// temporary — register-sourced wires are materialized into a
    /// temporary at compile time so the pre-commit value is read).
    Wire(Src),
    /// Signal is a register, read *post-commit and post-earlier-resets*,
    /// exactly as the interpreter's sequential reset loop does.
    Reg(u16),
}

/// A compiled register: initial value plus reset behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CompiledReg {
    init: u32,
    reset: Reset,
}

/// Compile-time disposition of `Output.valid`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ValidMode {
    /// No valid statement, or it folded to a nonzero constant.
    Always,
    /// Folded to constant zero: the unit never produces a value (the
    /// engine's stall guard trips, as with the interpreter).
    Never,
    /// Evaluated per unit.
    Dynamic,
}

/// Optimization statistics for one compiled plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanStats {
    /// Statements in the source program.
    pub source_statements: usize,
    /// Statements in the compiled plan.
    pub compiled_statements: usize,
    /// Statements removed by constant folding / algebraic simplification.
    pub folded: usize,
    /// `ID` aliases removed by copy propagation.
    pub aliased: usize,
    /// Shift/mask chains fused into a single compiled op.
    pub fused: usize,
    /// Statements removed as dead (shadowed writes or nets that never
    /// reach an output or live register).
    pub eliminated: usize,
    /// Temporary slots in the compiled plan.
    pub tmp_slots: usize,
    /// Live registers kept in the compiled plan.
    pub registers: usize,
}

/// Mutable per-execution state of a compiled plan. Allocated once per
/// block decode; nothing inside allocates per unit.
#[derive(Debug, Clone)]
pub struct CompiledState {
    regs: Vec<u32>,
    next: Vec<u32>,
    tmps: Vec<u32>,
    out: u32,
    valid: u32,
}

/// A stage-2 program lowered to a flat statement list over dense slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledProgram {
    stmts: Vec<CompiledStmt>,
    regs: Vec<CompiledReg>,
    n_tmps: usize,
    has_output: bool,
    valid: ValidMode,
    stats: PlanStats,
}

impl CompiledProgram {
    /// Lowers a program. The program should already have passed
    /// [`Program::validate`]; compilation re-checks name resolution.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] on reads of undefined wires or arity
    /// mismatches (impossible for validated programs).
    pub fn compile(program: &Program) -> Result<CompiledProgram, ExecError> {
        Compiler::new(program).run()
    }

    /// Optimization statistics for this plan.
    pub fn stats(&self) -> PlanStats {
        self.stats
    }

    /// Creates the mutable state for one execution (one block decode).
    pub fn new_state(&self) -> CompiledState {
        let inits: Vec<u32> = self.regs.iter().map(|r| r.init).collect();
        CompiledState {
            next: inits.clone(),
            regs: inits,
            tmps: vec![0; self.n_tmps],
            out: 0,
            valid: 0,
        }
    }

    #[inline]
    fn read(&self, src: Src, input: u32, st: &CompiledState) -> u32 {
        match src {
            Src::Lit(v) => v,
            Src::Input => input,
            Src::Reg(i) => st.regs[i as usize],
            Src::Tmp(t) => st.tmps[t as usize],
        }
    }

    /// Runs one cycle with payload `input`. Bit-equal to
    /// [`Program::step`] on the source program, but infallible and free of
    /// per-unit allocation or string hashing.
    #[inline]
    pub fn step(&self, input: u32, st: &mut CompiledState) -> Option<u32> {
        for s in &self.stmts {
            let a = self.read(s.args[0], input, st);
            let v = match s.kind {
                CKind::Id => a,
                CKind::Shr => a.checked_shr(self.read(s.args[1], input, st)).unwrap_or(0),
                CKind::Shl => a.checked_shl(self.read(s.args[1], input, st)).unwrap_or(0),
                CKind::And => a & self.read(s.args[1], input, st),
                CKind::Or => a | self.read(s.args[1], input, st),
                CKind::Xor => a ^ self.read(s.args[1], input, st),
                CKind::Add => a.wrapping_add(self.read(s.args[1], input, st)),
                CKind::Sub => a.wrapping_sub(self.read(s.args[1], input, st)),
                CKind::Mux => {
                    if a != 0 {
                        self.read(s.args[1], input, st)
                    } else {
                        self.read(s.args[2], input, st)
                    }
                }
                CKind::ShrAnd { shift, mask } => (a >> shift) & mask,
                CKind::AndShl { mask, shift } => (a & mask) << shift,
            };
            match s.dst {
                Dst::Tmp(t) => st.tmps[t as usize] = v,
                Dst::RegNext(i) => st.next[i as usize] = v,
                Dst::Output => st.out = v,
                Dst::Valid => st.valid = v,
            }
        }
        if !self.regs.is_empty() {
            // Commit at the clock edge, then apply synchronous resets
            // sequentially in declaration order (a reset sourced from a
            // register sees earlier resets, matching the interpreter).
            st.regs.copy_from_slice(&st.next);
            for (i, r) in self.regs.iter().enumerate() {
                let sig = match r.reset {
                    Reset::Never => continue,
                    Reset::Wire(src) => self.read(src, input, st),
                    Reset::Reg(j) => st.regs[j as usize],
                };
                if sig != 0 {
                    st.regs[i] = r.init;
                }
            }
            st.next.copy_from_slice(&st.regs);
        }
        let is_valid = match self.valid {
            ValidMode::Always => true,
            ValidMode::Never => false,
            ValidMode::Dynamic => st.valid != 0,
        };
        if is_valid && self.has_output {
            Some(st.out)
        } else {
            None
        }
    }
}

/// Evaluates a base op over constants, mirroring the interpreter exactly.
fn fold_const(op: Op, v: [u32; 3]) -> u32 {
    match op {
        Op::Shr => v[0].checked_shr(v[1]).unwrap_or(0),
        Op::Shl => v[0].checked_shl(v[1]).unwrap_or(0),
        Op::And => v[0] & v[1],
        Op::Or => v[0] | v[1],
        Op::Xor => v[0] ^ v[1],
        Op::Add => v[0].wrapping_add(v[1]),
        Op::Sub => v[0].wrapping_sub(v[1]),
        Op::Mux => {
            if v[0] != 0 {
                v[1]
            } else {
                v[2]
            }
        }
        Op::Id => v[0],
    }
}

/// Tries to collapse an operation to a single source: constant folding,
/// `MUX` arm selection, and cheap algebraic identities. Every rewrite here
/// is exact under the interpreter's wrapping/checked semantics.
fn simplify(op: Op, a: &[Src]) -> Option<Src> {
    if op == Op::Id {
        return Some(a[0]);
    }
    let lits: Option<Vec<u32>> = a
        .iter()
        .map(|s| if let Src::Lit(v) = s { Some(*v) } else { None })
        .collect();
    if let Some(l) = lits {
        let mut v = [0u32; 3];
        v[..l.len()].copy_from_slice(&l);
        return Some(Src::Lit(fold_const(op, v)));
    }
    match op {
        Op::Mux => match a[0] {
            Src::Lit(c) => Some(if c != 0 { a[1] } else { a[2] }),
            _ if a[1] == a[2] => Some(a[1]),
            _ => None,
        },
        Op::Shr | Op::Shl => match a[1] {
            Src::Lit(0) => Some(a[0]),
            Src::Lit(s) if s >= 32 => Some(Src::Lit(0)),
            _ => None,
        },
        Op::And => {
            if a[0] == Src::Lit(0) || a[1] == Src::Lit(0) {
                Some(Src::Lit(0))
            } else if a[1] == Src::Lit(u32::MAX) {
                Some(a[0])
            } else if a[0] == Src::Lit(u32::MAX) {
                Some(a[1])
            } else {
                None
            }
        }
        Op::Or | Op::Xor | Op::Add => {
            if a[1] == Src::Lit(0) {
                Some(a[0])
            } else if a[0] == Src::Lit(0) {
                Some(a[1])
            } else {
                None
            }
        }
        Op::Sub => {
            if a[1] == Src::Lit(0) {
                Some(a[0])
            } else {
                None
            }
        }
        _ => None,
    }
}

struct Compiler<'p> {
    program: &'p Program,
    reg_index: HashMap<&'p str, u16>,
    bindings: HashMap<&'p str, Src>,
    stmts: Vec<CompiledStmt>,
    next_tmp: u32,
    stats: PlanStats,
}

impl<'p> Compiler<'p> {
    fn new(program: &'p Program) -> Self {
        let reg_index = program
            .regs
            .iter()
            .enumerate()
            .map(|(i, r)| (r.name.as_str(), i as u16))
            .collect();
        Compiler {
            program,
            reg_index,
            bindings: HashMap::new(),
            stmts: Vec::new(),
            next_tmp: 0,
            stats: PlanStats {
                source_statements: program.statements.len(),
                ..PlanStats::default()
            },
        }
    }

    fn resolve(&self, name: &str) -> Result<Src, ExecError> {
        // Operand reads of the name `Input` always see the stage input,
        // even if a wire of that name was assigned (the interpreter's
        // read path checks `Input` first).
        if name == "Input" {
            return Ok(Src::Input);
        }
        if let Some(&i) = self.reg_index.get(name) {
            return Ok(Src::Reg(i));
        }
        if let Some(&src) = self.bindings.get(name) {
            return Ok(src);
        }
        Err(ExecError {
            reason: format!("read of undefined wire {name}"),
        })
    }

    fn emit(&mut self, kind: CKind, args: [Src; 3], dst: Dst) {
        self.stmts.push(CompiledStmt { kind, args, dst });
    }

    /// Pass 1: resolve names, SSA-rename wires, fold constants, record
    /// reset sources.
    fn build(&mut self) -> Result<Vec<CompiledReg>, ExecError> {
        let program = self.program;
        for st in &program.statements {
            if st.args.len() != st.op.arity() {
                return Err(ExecError {
                    reason: format!(
                        "{:?} takes {} operands, got {}",
                        st.op,
                        st.op.arity(),
                        st.args.len()
                    ),
                });
            }
            let mut args = [Src::Lit(0); 3];
            for (slot, a) in args.iter_mut().zip(&st.args) {
                *slot = match a {
                    Operand::Literal(v) => Src::Lit(*v),
                    Operand::Name(n) => self.resolve(n)?,
                };
            }
            let folded = simplify(st.op, &args[..st.op.arity()]);
            let dst = match st.dest.as_str() {
                "Output" => Dst::Output,
                "Output.valid" => Dst::Valid,
                name => {
                    if let Some(&i) = self.reg_index.get(name) {
                        Dst::RegNext(i)
                    } else if let Some(src) = folded {
                        // A folded wire needs no statement at all: later
                        // reads bind straight to the source. (A wire
                        // literally named `Input` is still recorded — it
                        // is unreadable as an operand but visible to the
                        // interpreter's reset-signal lookup.)
                        if st.op == Op::Id {
                            self.stats.aliased += 1;
                        } else {
                            self.stats.folded += 1;
                        }
                        self.bindings.insert(&st.dest, src);
                        continue;
                    } else {
                        let t = self.next_tmp;
                        self.next_tmp += 1;
                        self.bindings.insert(&st.dest, Src::Tmp(t));
                        Dst::Tmp(t)
                    }
                }
            };
            match folded {
                Some(src) => {
                    // Port writes still need the statement, but it becomes
                    // a plain Id of the folded source.
                    if st.op != Op::Id {
                        self.stats.folded += 1;
                    }
                    self.emit(CKind::Id, [src, Src::Lit(0), Src::Lit(0)], dst);
                }
                None => self.emit(CKind::from_op(st.op), args, dst),
            }
        }

        // Resolve reset signals. The interpreter looks resets up in the
        // wire map first, then the post-commit register file, defaulting
        // to 0 for names that were only ever output ports.
        let mut regs = Vec::with_capacity(program.regs.len());
        for r in &program.regs {
            let reset = if r.reset_signal.is_empty() {
                Reset::Never
            } else if let Some(&j) = self.reg_index.get(r.reset_signal.as_str()) {
                Reset::Reg(j)
            } else {
                match self.bindings.get(r.reset_signal.as_str()).copied() {
                    // A wire aliasing a register holds the *pre-commit*
                    // value; materialize it into a temporary so the reset
                    // (which runs post-commit) reads the right cycle.
                    Some(Src::Reg(j)) => {
                        let t = self.next_tmp;
                        self.next_tmp += 1;
                        self.emit(
                            CKind::Id,
                            [Src::Reg(j), Src::Lit(0), Src::Lit(0)],
                            Dst::Tmp(t),
                        );
                        Reset::Wire(Src::Tmp(t))
                    }
                    Some(src) => Reset::Wire(src),
                    // Never-bound names (e.g. `Output`) read as constant 0.
                    None => Reset::Never,
                }
            };
            regs.push(CompiledReg {
                init: r.init,
                reset,
            });
        }
        Ok(regs)
    }

    /// Pass 2: last-write-wins on the output/valid/register ports, then
    /// dead-net elimination with register liveness run to a fixpoint.
    fn eliminate_dead(
        &mut self,
        regs: Vec<CompiledReg>,
    ) -> (Vec<CompiledStmt>, Vec<CompiledReg>, bool, ValidMode) {
        let n_regs = regs.len();
        let mut out_root = None;
        let mut valid_root = None;
        let mut reg_write: Vec<Option<usize>> = vec![None; n_regs];
        for (i, s) in self.stmts.iter().enumerate() {
            match s.dst {
                Dst::Output => out_root = Some(i),
                Dst::Valid => valid_root = Some(i),
                Dst::RegNext(r) => reg_write[r as usize] = Some(i),
                Dst::Tmp(_) => {}
            }
        }

        // A constant `Output.valid` needs no per-unit statement.
        let valid_mode = match valid_root {
            None => ValidMode::Always,
            Some(i) => match (self.stmts[i].kind, self.stmts[i].args[0]) {
                (CKind::Id, Src::Lit(0)) => {
                    valid_root = None;
                    ValidMode::Never
                }
                (CKind::Id, Src::Lit(_)) => {
                    valid_root = None;
                    ValidMode::Always
                }
                _ => ValidMode::Dynamic,
            },
        };
        let has_output = out_root.is_some();

        let mut def_of_tmp: HashMap<u32, usize> = HashMap::new();
        for (i, s) in self.stmts.iter().enumerate() {
            if let Dst::Tmp(t) = s.dst {
                def_of_tmp.insert(t, i);
            }
        }

        enum Work {
            Stmt(usize),
            Reg(usize),
        }
        let mut live = vec![false; self.stmts.len()];
        let mut reg_live = vec![false; n_regs];
        let mut work: Vec<Work> = Vec::new();
        work.extend(out_root.map(Work::Stmt));
        work.extend(valid_root.map(Work::Stmt));
        while let Some(item) = work.pop() {
            match item {
                Work::Stmt(i) => {
                    if live[i] {
                        continue;
                    }
                    live[i] = true;
                    let s = self.stmts[i];
                    for &arg in &s.args[..s.kind.arg_count()] {
                        match arg {
                            Src::Tmp(t) => {
                                if let Some(&d) = def_of_tmp.get(&t) {
                                    work.push(Work::Stmt(d));
                                }
                            }
                            Src::Reg(r) => work.push(Work::Reg(r as usize)),
                            Src::Lit(_) | Src::Input => {}
                        }
                    }
                }
                Work::Reg(r) => {
                    if reg_live[r] {
                        continue;
                    }
                    reg_live[r] = true;
                    if let Some(w) = reg_write[r] {
                        work.push(Work::Stmt(w));
                    }
                    match regs[r].reset {
                        Reset::Wire(Src::Tmp(t)) => {
                            if let Some(&d) = def_of_tmp.get(&t) {
                                work.push(Work::Stmt(d));
                            }
                        }
                        Reset::Reg(j) => work.push(Work::Reg(j as usize)),
                        _ => {}
                    }
                }
            }
        }

        // Keep live statements; remap surviving register slots densely.
        let mut reg_map: Vec<Option<u16>> = vec![None; n_regs];
        let mut kept_regs = Vec::new();
        for (i, keep) in reg_live.iter().enumerate() {
            if *keep {
                reg_map[i] = Some(kept_regs.len() as u16);
                kept_regs.push(regs[i]);
            }
        }
        let remap_src = |src: Src| match src {
            Src::Reg(r) => Src::Reg(reg_map[r as usize].unwrap_or(0)),
            other => other,
        };
        for r in &mut kept_regs {
            match &mut r.reset {
                Reset::Wire(src) => *src = remap_src(*src),
                Reset::Reg(j) => *j = reg_map[*j as usize].unwrap_or(0),
                Reset::Never => {}
            }
        }
        let mut kept = Vec::new();
        for (i, s) in self.stmts.iter().enumerate() {
            if !live[i] {
                self.stats.eliminated += 1;
                continue;
            }
            let mut s = *s;
            for arg in &mut s.args {
                *arg = remap_src(*arg);
            }
            if let Dst::RegNext(r) = s.dst {
                s.dst = Dst::RegNext(reg_map[r as usize].unwrap_or(0));
            }
            kept.push(s);
        }
        (kept, kept_regs, has_output, valid_mode)
    }

    /// Pass 3: fuse single-use literal shift/mask chains.
    fn fuse(&mut self, stmts: Vec<CompiledStmt>, regs: &[CompiledReg]) -> Vec<CompiledStmt> {
        let mut def: HashMap<u32, usize> = HashMap::new();
        let mut uses: HashMap<u32, usize> = HashMap::new();
        for (i, s) in stmts.iter().enumerate() {
            if let Dst::Tmp(t) = s.dst {
                def.insert(t, i);
            }
            for &arg in &s.args[..s.kind.arg_count()] {
                if let Src::Tmp(t) = arg {
                    *uses.entry(t).or_insert(0) += 1;
                }
            }
        }
        for r in regs {
            if let Reset::Wire(Src::Tmp(t)) = r.reset {
                *uses.entry(t).or_insert(0) += 1;
            }
        }

        let mut stmts = stmts;
        let mut dead = vec![false; stmts.len()];
        for j in 0..stmts.len() {
            let s = stmts[j];
            // AND(t, mask) where t = SHR(x, sh) and t is single-use.
            if s.kind == CKind::And {
                let (t, mask) = match (s.args[0], s.args[1]) {
                    (Src::Tmp(t), Src::Lit(m)) | (Src::Lit(m), Src::Tmp(t)) => (t, m),
                    _ => continue,
                };
                let Some(&i) = def.get(&t) else { continue };
                if dead[i] || uses.get(&t) != Some(&1) {
                    continue;
                }
                let d = stmts[i];
                if d.kind == CKind::Shr {
                    if let Src::Lit(shift) = d.args[1] {
                        stmts[j] = CompiledStmt {
                            kind: CKind::ShrAnd { shift, mask },
                            args: [d.args[0], Src::Lit(0), Src::Lit(0)],
                            dst: s.dst,
                        };
                        dead[i] = true;
                        self.stats.fused += 1;
                    }
                }
            } else if s.kind == CKind::Shl {
                // SHL(t, sh) where t = AND(x, mask) and t is single-use.
                let (t, shift) = match (s.args[0], s.args[1]) {
                    (Src::Tmp(t), Src::Lit(sh)) => (t, sh),
                    _ => continue,
                };
                if shift >= 32 {
                    continue;
                }
                let Some(&i) = def.get(&t) else { continue };
                if dead[i] || uses.get(&t) != Some(&1) {
                    continue;
                }
                let d = stmts[i];
                if d.kind == CKind::And {
                    let (x, mask) = match (d.args[0], d.args[1]) {
                        (x, Src::Lit(m)) | (Src::Lit(m), x) => (x, m),
                        _ => continue,
                    };
                    stmts[j] = CompiledStmt {
                        kind: CKind::AndShl { mask, shift },
                        args: [x, Src::Lit(0), Src::Lit(0)],
                        dst: s.dst,
                    };
                    dead[i] = true;
                    self.stats.fused += 1;
                }
            }
        }
        stmts
            .into_iter()
            .zip(dead)
            .filter_map(|(s, d)| if d { None } else { Some(s) })
            .collect()
    }

    /// Pass 4: stable topological order (Kahn with a min-index heap, so an
    /// already-ordered list is emitted unchanged), then dense renumbering
    /// of the temporary slots.
    fn order_and_renumber(
        &mut self,
        stmts: Vec<CompiledStmt>,
        regs: &mut [CompiledReg],
    ) -> Vec<CompiledStmt> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let mut def: HashMap<u32, usize> = HashMap::new();
        for (i, s) in stmts.iter().enumerate() {
            if let Dst::Tmp(t) = s.dst {
                def.insert(t, i);
            }
        }
        let mut indegree = vec![0usize; stmts.len()];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); stmts.len()];
        for (j, s) in stmts.iter().enumerate() {
            for &arg in &s.args[..s.kind.arg_count()] {
                if let Src::Tmp(t) = arg {
                    if let Some(&i) = def.get(&t) {
                        dependents[i].push(j);
                        indegree[j] += 1;
                    }
                }
            }
        }
        let mut ready: BinaryHeap<Reverse<usize>> = indegree
            .iter()
            .enumerate()
            .filter(|&(_, d)| *d == 0)
            .map(|(i, _)| Reverse(i))
            .collect();
        let mut order = Vec::with_capacity(stmts.len());
        while let Some(Reverse(i)) = ready.pop() {
            order.push(i);
            for &j in &dependents[i] {
                indegree[j] -= 1;
                if indegree[j] == 0 {
                    ready.push(Reverse(j));
                }
            }
        }
        // SSA over temporaries cannot cycle; a shortfall would mean a
        // compiler bug, in which case the original order is kept (it is
        // always executable).
        if order.len() != stmts.len() {
            order = (0..stmts.len()).collect();
        }

        let mut tmp_map: HashMap<u32, u32> = HashMap::new();
        let mut out = Vec::with_capacity(stmts.len());
        for &i in &order {
            let mut s = stmts[i];
            if let Dst::Tmp(t) = s.dst {
                let n = tmp_map.len() as u32;
                tmp_map.insert(t, n);
                s.dst = Dst::Tmp(n);
            }
            out.push(s);
        }
        let remap = |src: &mut Src| {
            if let Src::Tmp(t) = src {
                *t = tmp_map.get(t).copied().unwrap_or(0);
            }
        };
        for s in &mut out {
            for arg in &mut s.args {
                remap(arg);
            }
        }
        for r in regs {
            if let Reset::Wire(src) = &mut r.reset {
                remap(src);
            }
        }
        self.stats.tmp_slots = tmp_map.len();
        out
    }

    fn run(mut self) -> Result<CompiledProgram, ExecError> {
        let regs = self.build()?;
        let (stmts, mut regs, has_output, valid) = self.eliminate_dead(regs);
        let stmts = self.fuse(stmts, &regs);
        let stmts = self.order_and_renumber(stmts, &mut regs);
        self.stats.compiled_statements = stmts.len();
        self.stats.registers = regs.len();
        let n_tmps = self.stats.tmp_slots;
        Ok(CompiledProgram {
            stmts,
            regs,
            n_tmps,
            has_output,
            valid,
            stats: self.stats,
        })
    }
}

/// Largest number of distinct configurations kept in the process-wide
/// plan cache. Random configurations (e.g. the corruption harness) stop
/// being cached past this point instead of growing the cache unboundedly.
const PLAN_CACHE_CAP: usize = 128;

static PLAN_CACHE: Mutex<Vec<(EngineConfig, Arc<CompiledProgram>)>> = Mutex::new(Vec::new());
static COMPILE_COUNT: AtomicU64 = AtomicU64::new(0);

/// Number of netlist compilations performed by this process. Cache hits
/// (repeated construction of engines with equal configurations) do not
/// increment it.
pub fn compile_count() -> u64 {
    COMPILE_COUNT.load(Ordering::Relaxed)
}

/// Returns the compiled plan for `config`, compiling at most once per
/// distinct configuration.
pub(crate) fn plan_for(config: &EngineConfig) -> Result<Arc<CompiledProgram>, ExecError> {
    let mut cache = PLAN_CACHE.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some((_, plan)) = cache.iter().find(|(c, _)| c == config) {
        return Ok(Arc::clone(plan));
    }
    let plan = Arc::new(CompiledProgram::compile(&config.program)?);
    COMPILE_COUNT.fetch_add(1, Ordering::Relaxed);
    if cache.len() < PLAN_CACHE_CAP {
        cache.push((config.clone(), Arc::clone(&plan)));
    }
    Ok(plan)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use crate::program::{RegDecl, Statement};

    fn name(n: &str) -> Operand {
        Operand::Name(n.into())
    }

    fn lit(v: u32) -> Operand {
        Operand::Literal(v)
    }

    fn st(dest: &str, op: Op, args: Vec<Operand>) -> Statement {
        Statement {
            dest: dest.into(),
            op,
            args,
        }
    }

    fn run_both(p: &Program, inputs: &[u32]) -> (Vec<Option<u32>>, Vec<Option<u32>>) {
        p.validate().unwrap();
        let plan = CompiledProgram::compile(p).unwrap();
        let mut interp_state = p.fresh_state();
        let mut comp_state = plan.new_state();
        let mut interp = Vec::new();
        let mut comp = Vec::new();
        for &x in inputs {
            interp.push(p.step(x, &mut interp_state).unwrap());
            comp.push(plan.step(x, &mut comp_state));
        }
        (interp, comp)
    }

    #[test]
    fn identity_compiles_to_single_statement() {
        let p = Program::identity();
        let plan = CompiledProgram::compile(&p).unwrap();
        let s = plan.stats();
        assert_eq!(s.source_statements, 2);
        // `Output := Input` survives; the constant-1 valid is elided.
        assert_eq!(s.compiled_statements, 1);
        assert_eq!(plan.valid, ValidMode::Always);
        let mut state = plan.new_state();
        assert_eq!(plan.step(42, &mut state), Some(42));
    }

    #[test]
    fn constant_folding_collapses_literal_chains() {
        let p = Program {
            regs: vec![],
            statements: vec![
                st("a", Op::Add, vec![lit(3), lit(4)]),
                st("b", Op::Shl, vec![name("a"), lit(2)]),
                st("Output", Op::Or, vec![name("b"), name("Input")]),
            ],
        };
        let plan = CompiledProgram::compile(&p).unwrap();
        assert_eq!(plan.stats().folded, 2);
        assert_eq!(plan.stats().compiled_statements, 1);
        let mut state = plan.new_state();
        assert_eq!(plan.step(1, &mut state), Some(28 | 1));
    }

    #[test]
    fn dead_nets_are_eliminated() {
        let p = Program {
            regs: vec![],
            statements: vec![
                st("unused", Op::Xor, vec![name("Input"), name("Input")]),
                st("also_unused", Op::Add, vec![name("unused"), lit(9)]),
                st("Output", Op::Id, vec![name("Input")]),
            ],
        };
        let plan = CompiledProgram::compile(&p).unwrap();
        assert_eq!(plan.stats().eliminated, 2);
        assert_eq!(plan.stats().compiled_statements, 1);
        let (i, c) = run_both(&p, &[1, 2, 3]);
        assert_eq!(i, c);
    }

    #[test]
    fn dead_register_update_is_dropped() {
        let p = Program {
            regs: vec![RegDecl {
                name: "Ghost".into(),
                init: 7,
                reset_signal: String::new(),
            }],
            statements: vec![
                st("Ghost", Op::Add, vec![name("Ghost"), name("Input")]),
                st("Output", Op::Id, vec![name("Input")]),
            ],
        };
        let plan = CompiledProgram::compile(&p).unwrap();
        assert_eq!(plan.stats().registers, 0);
        let (i, c) = run_both(&p, &[5, 6, 7]);
        assert_eq!(i, c);
    }

    #[test]
    fn shr_and_chain_fuses() {
        let p = Program {
            regs: vec![],
            statements: vec![
                st("t", Op::Shr, vec![name("Input"), lit(4)]),
                st("Output", Op::And, vec![name("t"), lit(0xF)]),
            ],
        };
        let plan = CompiledProgram::compile(&p).unwrap();
        assert_eq!(plan.stats().fused, 1);
        assert_eq!(plan.stats().compiled_statements, 1);
        let (i, c) = run_both(&p, &[0xABCD, 0, u32::MAX]);
        assert_eq!(i, c);
    }

    #[test]
    fn and_shl_chain_fuses() {
        let p = Program {
            regs: vec![],
            statements: vec![
                st("m", Op::And, vec![name("Input"), lit(0x7F)]),
                st("Output", Op::Shl, vec![name("m"), lit(8)]),
            ],
        };
        let plan = CompiledProgram::compile(&p).unwrap();
        assert_eq!(plan.stats().fused, 1);
        let (i, c) = run_both(&p, &[0x1FF, 0x80, 3]);
        assert_eq!(i, c);
    }

    #[test]
    fn multi_use_intermediate_is_not_fused() {
        let p = Program {
            regs: vec![],
            statements: vec![
                st("t", Op::Shr, vec![name("Input"), lit(4)]),
                st("masked", Op::And, vec![name("t"), lit(0xF)]),
                st("Output", Op::Add, vec![name("masked"), name("t")]),
            ],
        };
        let plan = CompiledProgram::compile(&p).unwrap();
        assert_eq!(plan.stats().fused, 0);
        let (i, c) = run_both(&p, &[0xFFFF, 0x10, 0]);
        assert_eq!(i, c);
    }

    #[test]
    fn shadowed_output_write_uses_last() {
        let p = Program {
            regs: vec![],
            statements: vec![
                st("Output", Op::Id, vec![lit(1)]),
                st("Output", Op::Add, vec![name("Input"), lit(10)]),
            ],
        };
        let (i, c) = run_both(&p, &[0, 5]);
        assert_eq!(i, c);
        assert_eq!(c, vec![Some(10), Some(15)]);
    }

    #[test]
    fn wire_rebinding_reads_latest_value() {
        let p = Program {
            regs: vec![],
            statements: vec![
                st("a", Op::Id, vec![name("Input")]),
                st("b", Op::Add, vec![name("a"), lit(1)]),
                st("a", Op::Add, vec![name("a"), lit(100)]),
                st("Output", Op::Add, vec![name("a"), name("b")]),
            ],
        };
        let (i, c) = run_both(&p, &[0, 7]);
        assert_eq!(i, c);
        assert_eq!(c, vec![Some(101), Some(115)]);
    }

    #[test]
    fn reset_from_register_alias_reads_pre_commit_value() {
        // `sig` aliases register R; the reset must see R's value from the
        // start of the cycle, not the freshly committed one.
        let p = Program {
            regs: vec![RegDecl {
                name: "R".into(),
                init: 0,
                reset_signal: "sig".into(),
            }],
            statements: vec![
                st("sig", Op::Id, vec![name("R")]),
                st("R", Op::Add, vec![name("R"), name("Input")]),
                st("Output", Op::Id, vec![name("R")]),
            ],
        };
        let (i, c) = run_both(&p, &[1, 1, 1, 1]);
        assert_eq!(i, c);
    }

    #[test]
    fn reset_from_other_register_sees_committed_value() {
        let p = Program {
            regs: vec![
                RegDecl {
                    name: "A".into(),
                    init: 0,
                    reset_signal: "B".into(),
                },
                RegDecl {
                    name: "B".into(),
                    init: 0,
                    reset_signal: String::new(),
                },
            ],
            statements: vec![
                st("A", Op::Add, vec![name("A"), lit(1)]),
                st("B", Op::Id, vec![name("Input")]),
                st("Output", Op::Id, vec![name("A")]),
            ],
        };
        let (i, c) = run_both(&p, &[0, 0, 1, 0, 1, 1, 0]);
        assert_eq!(i, c);
    }

    #[test]
    fn reset_signal_naming_output_never_fires() {
        // `Output` validates as a reset signal but is not a wire, so the
        // interpreter reads it as constant 0.
        let p = Program {
            regs: vec![RegDecl {
                name: "Acc".into(),
                init: 0,
                reset_signal: "Output".into(),
            }],
            statements: vec![
                st("Acc", Op::Add, vec![name("Acc"), name("Input")]),
                st("Output", Op::Id, vec![name("Acc")]),
            ],
        };
        let (i, c) = run_both(&p, &[1, 2, 3]);
        assert_eq!(i, c);
    }

    #[test]
    fn mux_with_literal_condition_folds() {
        let p = Program {
            regs: vec![],
            statements: vec![
                st("x", Op::Mux, vec![lit(1), name("Input"), lit(99)]),
                st("Output", Op::Id, vec![name("x")]),
            ],
        };
        let plan = CompiledProgram::compile(&p).unwrap();
        assert_eq!(plan.stats().compiled_statements, 1);
        let (i, c) = run_both(&p, &[4, 5]);
        assert_eq!(i, c);
    }

    #[test]
    fn never_valid_program_produces_nothing() {
        let p = Program {
            regs: vec![],
            statements: vec![
                st("Output", Op::Id, vec![name("Input")]),
                st("Output.valid", Op::Id, vec![lit(0)]),
            ],
        };
        let plan = CompiledProgram::compile(&p).unwrap();
        assert_eq!(plan.valid, ValidMode::Never);
        let (i, c) = run_both(&p, &[1, 2]);
        assert_eq!(i, c);
        assert_eq!(c, vec![None, None]);
    }

    #[test]
    fn plan_cache_hits_do_not_recompile() {
        let config = EngineConfig {
            extractor: crate::config::ExtractorConfig {
                kind: crate::ExtractorKind::FixedWidth,
            },
            program: Program {
                regs: vec![],
                statements: vec![st("Output", Op::Xor, vec![name("Input"), lit(0xDEAD_0001)])],
            },
            exceptions: crate::config::ExceptionConfig::default(),
            delta: crate::config::DeltaConfig::default(),
        };
        let a = plan_for(&config).unwrap();
        let b = plan_for(&config).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit the cache");
    }

    #[test]
    fn compile_count_is_monotonic() {
        let before = compile_count();
        let config = EngineConfig {
            extractor: crate::config::ExtractorConfig {
                kind: crate::ExtractorKind::FixedWidth,
            },
            program: Program {
                regs: vec![],
                statements: vec![st("Output", Op::Xor, vec![name("Input"), lit(0xDEAD_0002)])],
            },
            exceptions: crate::config::ExceptionConfig::default(),
            delta: crate::config::DeltaConfig::default(),
        };
        plan_for(&config).unwrap();
        assert!(compile_count() > before);
        let mid = compile_count();
        for _ in 0..10 {
            plan_for(&config).unwrap();
        }
        // Other tests may compile concurrently, but these ten repeats must
        // not add ten compiles themselves; give them a small margin.
        assert!(compile_count() - mid < 10);
    }
}
