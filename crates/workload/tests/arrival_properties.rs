//! Property tests for the open-loop arrival generators: the serving
//! layer's determinism contract starts here — the same seed must yield
//! the same arrival trace, and traces must be strictly increasing so
//! admission decisions are unambiguous.

use boss_workload::arrivals::{generate, ArrivalKind};
use proptest::prelude::*;

fn any_kind() -> impl Strategy<Value = ArrivalKind> {
    prop_oneof![Just(ArrivalKind::Poisson), Just(ArrivalKind::Bursty)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn same_seed_same_trace(
        kind in any_kind(),
        n in 1usize..800,
        mean_cycles in 1u64..10_000,
        seed in any::<u64>(),
    ) {
        let a = generate(kind, n, mean_cycles as f64, seed);
        let b = generate(kind, n, mean_cycles as f64, seed);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn trace_is_strictly_increasing_and_sized(
        kind in any_kind(),
        n in 1usize..800,
        mean_cycles in 1u64..10_000,
        seed in any::<u64>(),
    ) {
        let a = generate(kind, n, mean_cycles as f64, seed);
        prop_assert_eq!(a.len(), n);
        for w in a.windows(2) {
            prop_assert!(w[0] < w[1], "{} !< {}", w[0], w[1]);
        }
        prop_assert!(a[0] >= 1, "arrivals start after cycle 0");
    }

    #[test]
    fn degenerate_means_are_clamped_not_panicking(
        kind in any_kind(),
        n in 1usize..64,
        mean_milli in 0u64..1000,
        seed in any::<u64>(),
    ) {
        // Sub-cycle means clamp to one cycle; the generator must stay
        // total and strictly increasing.
        let a = generate(kind, n, mean_milli as f64 / 1000.0, seed);
        prop_assert_eq!(a.len(), n);
        for w in a.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }
}
