//! Synthetic web corpora standing in for ClueWeb12 and CC-News.
//!
//! The paper's experiments depend on three statistical properties of real
//! corpora, all of which these generators reproduce:
//!
//! * **Zipfian document frequencies** — a few huge posting lists, a long
//!   tail of small ones (drives list-length mixes and skip efficacy);
//! * **docID locality** — a fraction of lists are clustered, which is what
//!   block-level skipping exploits;
//! * **skewed term frequencies** — geometric tf (mostly 1–2 with a tail)
//!   gives realistic BM25 score skew, which is what early termination
//!   exploits.

use crate::rng::{self, SeededRng, Zipf};
use boss_index::{IndexBuilder, InvertedIndex, PostingList};
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// Corpus size presets used by all figure binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scale {
    /// Seconds-fast: CI and unit tests.
    Smoke,
    /// Default for figure regeneration (tens of seconds end to end).
    Small,
    /// Closest to the paper's shard sizes this side of a data center.
    Full,
}

impl std::str::FromStr for Scale {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "smoke" => Ok(Scale::Smoke),
            "small" => Ok(Scale::Small),
            "full" => Ok(Scale::Full),
            other => Err(format!("unknown scale {other:?} (use smoke|small|full)")),
        }
    }
}

/// Specification of a synthetic corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusSpec {
    /// Corpus name used in reports.
    pub name: String,
    /// Number of documents in the shard.
    pub n_docs: u32,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Zipf exponent of the document-frequency distribution.
    pub zipf_s: f64,
    /// Average number of *distinct* terms per document (sets the total
    /// posting count: `n_docs * avg_unique_terms`).
    pub avg_unique_terms: u32,
    /// Geometric parameter for `tf - 1` (larger = more tf=1 postings).
    pub tf_p: f64,
    /// Fraction of posting lists generated with clustered docIDs.
    pub cluster_fraction: f64,
    /// Generator seed.
    pub seed: u64,
}

impl CorpusSpec {
    /// A ClueWeb12-like shard: long web documents, strongly skewed
    /// vocabulary, substantial docID clustering (crawl locality).
    pub fn clueweb12_like(scale: Scale) -> Self {
        let (n_docs, vocab) = match scale {
            Scale::Smoke => (2_500, 2_000),
            Scale::Small => (40_000, 15_000),
            Scale::Full => (250_000, 60_000),
        };
        CorpusSpec {
            name: format!("clueweb12-like-{scale:?}").to_lowercase(),
            n_docs,
            vocab_size: vocab,
            zipf_s: 1.05,
            avg_unique_terms: 110,
            tf_p: 0.55,
            cluster_fraction: 0.5,
            seed: 0xC1_EB12,
        }
    }

    /// A CC-News-like shard: shorter articles, milder clustering.
    pub fn ccnews_like(scale: Scale) -> Self {
        let (n_docs, vocab) = match scale {
            Scale::Smoke => (3_000, 2_500),
            Scale::Small => (50_000, 18_000),
            Scale::Full => (300_000, 70_000),
        };
        CorpusSpec {
            name: format!("ccnews-like-{scale:?}").to_lowercase(),
            n_docs,
            vocab_size: vocab,
            zipf_s: 1.15,
            avg_unique_terms: 65,
            tf_p: 0.65,
            cluster_fraction: 0.3,
            seed: 0xCC_0E35,
        }
    }

    /// Generates the corpus as term-major posting lists in lexical term
    /// order — the common substrate of [`CorpusSpec::build`] (in-memory)
    /// and [`CorpusSpec::build_segments`] (SPIMI), so both paths index
    /// the identical corpus.
    ///
    /// # Errors
    ///
    /// Propagates posting-list construction failures (cannot occur for
    /// the generated, always-valid posting data).
    pub fn term_lists(&self) -> Result<Vec<(String, PostingList)>, boss_index::Error> {
        let mut r = rng::rng(self.seed);
        let total_postings = u64::from(self.n_docs) * u64::from(self.avg_unique_terms);
        let zipf = Zipf::new(self.vocab_size, self.zipf_s);

        let mut lists = Vec::with_capacity(self.vocab_size);
        let width = (self.vocab_size as f64).log10().ceil().max(1.0) as usize;
        for rank in 1..=self.vocab_size {
            let df = ((total_postings as f64 * zipf.weight(rank)).round() as u64)
                .clamp(1, u64::from(self.n_docs) * 6 / 10) as usize;
            let docs = self.sample_docs(&mut r, df);
            let tfs: Vec<u32> = (0..docs.len())
                .map(|_| 1 + rng::geometric(&mut r, self.tf_p))
                .collect();
            let list = PostingList::from_columns(docs, tfs)?;
            // Lexical order == rank order thanks to zero padding, so rank-r
            // terms are cheap to find in tests and samplers.
            lists.push((format!("t{rank:0width$}"), list));
        }
        Ok(lists)
    }

    /// Builds the inverted index (hybrid-compressed, like BOSS's index).
    ///
    /// # Errors
    ///
    /// Propagates index-construction failures (cannot occur for the
    /// generated, always-valid posting data).
    pub fn build(&self) -> Result<InvertedIndex, boss_index::Error> {
        let mut builder = IndexBuilder::new();
        for (term, list) in self.term_lists()? {
            builder = builder.add_posting_list(&term, &list);
        }
        builder.build()
    }

    /// Builds the same corpus through the SPIMI spill/merge path: the
    /// term-major lists are transposed doc-major and fed to a
    /// [`boss_index::SpimiBuilder`] capped at `n_segments` on-disk
    /// segments in `dir`. The returned set's
    /// [`boss_index::SegmentSet::merge`] is bit-identical to
    /// [`CorpusSpec::build`].
    ///
    /// # Errors
    ///
    /// Propagates segment I/O and index-construction failures.
    pub fn build_segments(
        &self,
        dir: &std::path::Path,
        n_segments: u32,
    ) -> Result<boss_index::SegmentSet, boss_index::io::IoError> {
        self.build_segments_with(dir, n_segments, boss_index::SchemeChoice::Hybrid)
    }

    /// [`CorpusSpec::build_segments`] with an explicit compression
    /// policy, mirroring `IndexBuilder::scheme` — used by the
    /// `segment_build --verify` codec sweep.
    ///
    /// # Errors
    ///
    /// As for [`CorpusSpec::build_segments`], plus encoding failures for
    /// a fixed scheme that cannot represent some list.
    pub fn build_segments_with(
        &self,
        dir: &std::path::Path,
        n_segments: u32,
        scheme: boss_index::SchemeChoice,
    ) -> Result<boss_index::SegmentSet, boss_index::io::IoError> {
        use boss_index::io::IoError;

        let lists = self.term_lists().map_err(IoError::Invalid)?;
        // Transpose term-major → doc-major. Documents no term sampled
        // stay as empty tail entries, exactly like the in-memory build
        // (which sizes the corpus by the highest docID seen).
        let n_docs = lists
            .iter()
            .filter_map(|(_, l)| l.docs().last().copied())
            .max()
            .map_or(0, |d| d as usize + 1);
        let mut docs: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n_docs];
        for (term_id, (_, list)) in lists.iter().enumerate() {
            for p in list.iter() {
                docs[p.doc as usize].push((term_id as u32, p.tf));
            }
        }

        let per_segment = (n_docs as u32).div_ceil(n_segments.max(1));
        let cfg = boss_index::SpimiConfig {
            max_docs_per_segment: per_segment,
            scheme,
            ..boss_index::SpimiConfig::default()
        };
        let mut builder = boss_index::SpimiBuilder::create(dir, cfg)?;
        for terms in &docs {
            // doc_len 0 → tf-sum fallback, matching the in-memory build
            // of injected lists without explicit lengths.
            builder.add_document(
                terms
                    .iter()
                    .map(|&(t, tf)| (lists[t as usize].0.as_str(), tf)),
                0,
            )?;
        }
        builder.finish()
    }

    fn sample_docs(&self, r: &mut SeededRng, df: usize) -> Vec<u32> {
        let clustered = r.random_range(0.0..1.0) < self.cluster_fraction;
        if !clustered || df < 64 {
            return rng::sorted_distinct(r, df, self.n_docs);
        }
        // Clustered list: docs drawn from a handful of contiguous regions.
        let n_clusters = (df / 256).clamp(1, 64);
        let width = (self.n_docs / n_clusters as u32 / 4).max(512);
        let per = df / n_clusters;
        let mut docs = Vec::with_capacity(df);
        for _ in 0..n_clusters {
            let base = r.random_range(0..self.n_docs.saturating_sub(width).max(1));
            let take = per.min(width as usize / 2).max(1);
            for v in rng::sorted_distinct(r, take, width) {
                docs.push(base + v);
            }
        }
        docs.sort_unstable();
        docs.dedup();
        docs
    }
}

/// A doc-major synthetic corpus that is never materialized: each
/// document's term bag is generated on demand from a per-document RNG, so
/// a 10–100M-document corpus can be fed straight into a
/// [`boss_index::SpimiBuilder`] with memory bounded by one document plus
/// the SPIMI budget. Document frequencies still come out Zipfian (terms
/// are drawn rank-wise from a Zipf sampler) and term frequencies
/// geometric, like [`CorpusSpec`]; unlike `CorpusSpec` there is no docID
/// clustering knob — streaming generation is docID-order by construction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamingCorpusSpec {
    /// Number of documents.
    pub n_docs: u32,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Zipf exponent of the term-draw distribution.
    pub zipf_s: f64,
    /// Term draws per document (distinct terms ≤ this; repeated draws
    /// aggregate into the term's frequency).
    pub terms_per_doc: u32,
    /// Generator seed.
    pub seed: u64,
}

impl StreamingCorpusSpec {
    /// Prepares the per-run sampling state (the Zipf cdf, built once).
    pub fn streamer(&self) -> DocStreamer {
        DocStreamer {
            spec: self.clone(),
            zipf: Zipf::new(self.vocab_size, self.zipf_s),
            width: (self.vocab_size as f64).log10().ceil().max(1.0) as usize,
        }
    }
}

/// Sampling state of a [`StreamingCorpusSpec`] run.
#[derive(Debug, Clone)]
pub struct DocStreamer {
    spec: StreamingCorpusSpec,
    zipf: Zipf,
    width: usize,
}

impl DocStreamer {
    /// Generates document `doc`'s term bag into `out` (cleared first) as
    /// `(term, tf)` pairs with distinct terms, and returns the document
    /// length in tokens. Deterministic per `(seed, doc)` — documents can
    /// be generated in any order or in parallel.
    pub fn doc_terms(&self, doc: u32, out: &mut Vec<(String, u32)>) -> u32 {
        out.clear();
        // SplitMix-style per-document stream so doc i+1 does not depend
        // on how many draws doc i consumed.
        let mix = (u64::from(doc) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut r = rng::rng(self.spec.seed ^ mix);
        let mut counts: std::collections::BTreeMap<usize, u32> = std::collections::BTreeMap::new();
        let mut len = 0u32;
        for _ in 0..self.spec.terms_per_doc {
            let rank = self.zipf.sample(&mut r);
            *counts.entry(rank).or_insert(0) += 1;
            len += 1;
        }
        let width = self.width;
        out.extend(
            counts
                .into_iter()
                .map(|(rank, tf)| (format!("t{rank:0width$}"), tf)),
        );
        len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_corpus_builds() {
        let idx = CorpusSpec::ccnews_like(Scale::Smoke).build().unwrap();
        assert_eq!(idx.n_docs(), 3_000);
        assert_eq!(idx.n_terms(), 2_500);
        assert!(idx.total_raw_bytes() > 0);
    }

    #[test]
    fn deterministic() {
        let a = CorpusSpec::ccnews_like(Scale::Smoke).build().unwrap();
        let b = CorpusSpec::ccnews_like(Scale::Smoke).build().unwrap();
        assert_eq!(a.total_data_bytes(), b.total_data_bytes());
        let t0 = a.term_id("t0001").unwrap();
        assert_eq!(a.term_info(t0).df, b.term_info(t0).df);
    }

    #[test]
    fn df_distribution_is_zipfian() {
        let idx = CorpusSpec::clueweb12_like(Scale::Smoke).build().unwrap();
        // Rank 1 term should have a much bigger list than rank 100.
        let top = idx.term_info(idx.term_id("t0001").unwrap()).df;
        let mid = idx.term_info(idx.term_id("t0100").unwrap()).df;
        let tail = idx.term_info(idx.term_id("t1900").unwrap()).df;
        // df clamping caps the head, so compare against a softer factor.
        assert!(top > mid * 3, "top {top} vs mid {mid}");
        assert!(mid > tail, "mid {mid} vs tail {tail}");
    }

    #[test]
    fn compression_beats_raw() {
        let idx = CorpusSpec::ccnews_like(Scale::Smoke).build().unwrap();
        assert!(
            idx.total_data_bytes() < idx.total_raw_bytes() / 2,
            "hybrid compression should at least halve the index: {} vs {}",
            idx.total_data_bytes(),
            idx.total_raw_bytes()
        );
    }

    #[test]
    fn segment_build_matches_in_memory_build() {
        let spec = CorpusSpec::ccnews_like(Scale::Smoke);
        let dir = std::env::temp_dir().join(format!("boss-corpus-seg-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let set = spec.build_segments(&dir, 4).unwrap();
        assert_eq!(set.entries().len(), 4);
        assert_eq!(set.merge().unwrap(), spec.build().unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn streaming_docs_deterministic_and_zipfian() {
        let spec = StreamingCorpusSpec {
            n_docs: 500,
            vocab_size: 200,
            zipf_s: 1.1,
            terms_per_doc: 8,
            seed: 7,
        };
        let s = spec.streamer();
        let mut a = Vec::new();
        let mut b = Vec::new();
        let mut head = 0u32;
        let mut total = 0u32;
        for doc in 0..spec.n_docs {
            let len = s.doc_terms(doc, &mut a);
            assert_eq!(len, spec.terms_per_doc);
            assert!(!a.is_empty() && a.len() <= spec.terms_per_doc as usize);
            // Order-independent regeneration.
            s.doc_terms(doc, &mut b);
            assert_eq!(a, b);
            for (t, tf) in &a {
                assert!(*tf >= 1);
                if t == "t001" {
                    head += 1;
                }
                total += 1;
            }
        }
        assert!(
            head * 10 > total / spec.terms_per_doc,
            "rank-1 term should be frequent: {head} of {total}"
        );
    }

    #[test]
    fn streaming_feeds_spimi() {
        let spec = StreamingCorpusSpec {
            n_docs: 300,
            vocab_size: 100,
            zipf_s: 1.05,
            terms_per_doc: 6,
            seed: 11,
        };
        let dir = std::env::temp_dir().join(format!("boss-stream-seg-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cfg = boss_index::SpimiConfig {
            budget_bytes: 16 << 10,
            ..boss_index::SpimiConfig::default()
        };
        let mut b = boss_index::SpimiBuilder::create(&dir, cfg).unwrap();
        let s = spec.streamer();
        let mut terms = Vec::new();
        for doc in 0..spec.n_docs {
            let len = s.doc_terms(doc, &mut terms);
            b.add_document(terms.iter().map(|(t, tf)| (t.as_str(), *tf)), len)
                .unwrap();
        }
        let set = b.finish().unwrap();
        assert!(set.stats().spills >= 2, "16 KB budget must spill");
        let idx = set.merge().unwrap();
        assert_eq!(idx.n_docs(), spec.n_docs);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scale_parse() {
        assert_eq!("smoke".parse::<Scale>().unwrap(), Scale::Smoke);
        assert_eq!("full".parse::<Scale>().unwrap(), Scale::Full);
        assert!("giant".parse::<Scale>().is_err());
    }
}
