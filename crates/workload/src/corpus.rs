//! Synthetic web corpora standing in for ClueWeb12 and CC-News.
//!
//! The paper's experiments depend on three statistical properties of real
//! corpora, all of which these generators reproduce:
//!
//! * **Zipfian document frequencies** — a few huge posting lists, a long
//!   tail of small ones (drives list-length mixes and skip efficacy);
//! * **docID locality** — a fraction of lists are clustered, which is what
//!   block-level skipping exploits;
//! * **skewed term frequencies** — geometric tf (mostly 1–2 with a tail)
//!   gives realistic BM25 score skew, which is what early termination
//!   exploits.

use crate::rng::{self, SeededRng, Zipf};
use boss_index::{IndexBuilder, InvertedIndex, PostingList};
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// Corpus size presets used by all figure binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scale {
    /// Seconds-fast: CI and unit tests.
    Smoke,
    /// Default for figure regeneration (tens of seconds end to end).
    Small,
    /// Closest to the paper's shard sizes this side of a data center.
    Full,
}

impl std::str::FromStr for Scale {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "smoke" => Ok(Scale::Smoke),
            "small" => Ok(Scale::Small),
            "full" => Ok(Scale::Full),
            other => Err(format!("unknown scale {other:?} (use smoke|small|full)")),
        }
    }
}

/// Specification of a synthetic corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusSpec {
    /// Corpus name used in reports.
    pub name: String,
    /// Number of documents in the shard.
    pub n_docs: u32,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Zipf exponent of the document-frequency distribution.
    pub zipf_s: f64,
    /// Average number of *distinct* terms per document (sets the total
    /// posting count: `n_docs * avg_unique_terms`).
    pub avg_unique_terms: u32,
    /// Geometric parameter for `tf - 1` (larger = more tf=1 postings).
    pub tf_p: f64,
    /// Fraction of posting lists generated with clustered docIDs.
    pub cluster_fraction: f64,
    /// Generator seed.
    pub seed: u64,
}

impl CorpusSpec {
    /// A ClueWeb12-like shard: long web documents, strongly skewed
    /// vocabulary, substantial docID clustering (crawl locality).
    pub fn clueweb12_like(scale: Scale) -> Self {
        let (n_docs, vocab) = match scale {
            Scale::Smoke => (2_500, 2_000),
            Scale::Small => (40_000, 15_000),
            Scale::Full => (250_000, 60_000),
        };
        CorpusSpec {
            name: format!("clueweb12-like-{scale:?}").to_lowercase(),
            n_docs,
            vocab_size: vocab,
            zipf_s: 1.05,
            avg_unique_terms: 110,
            tf_p: 0.55,
            cluster_fraction: 0.5,
            seed: 0xC1_EB12,
        }
    }

    /// A CC-News-like shard: shorter articles, milder clustering.
    pub fn ccnews_like(scale: Scale) -> Self {
        let (n_docs, vocab) = match scale {
            Scale::Smoke => (3_000, 2_500),
            Scale::Small => (50_000, 18_000),
            Scale::Full => (300_000, 70_000),
        };
        CorpusSpec {
            name: format!("ccnews-like-{scale:?}").to_lowercase(),
            n_docs,
            vocab_size: vocab,
            zipf_s: 1.15,
            avg_unique_terms: 65,
            tf_p: 0.65,
            cluster_fraction: 0.3,
            seed: 0xCC_0E35,
        }
    }

    /// Builds the inverted index (hybrid-compressed, like BOSS's index).
    ///
    /// # Errors
    ///
    /// Propagates index-construction failures (cannot occur for the
    /// generated, always-valid posting data).
    pub fn build(&self) -> Result<InvertedIndex, boss_index::Error> {
        let mut r = rng::rng(self.seed);
        let total_postings = u64::from(self.n_docs) * u64::from(self.avg_unique_terms);
        let zipf = Zipf::new(self.vocab_size, self.zipf_s);

        let mut builder = IndexBuilder::new();
        let width = (self.vocab_size as f64).log10().ceil().max(1.0) as usize;
        for rank in 1..=self.vocab_size {
            let df = ((total_postings as f64 * zipf.weight(rank)).round() as u64)
                .clamp(1, u64::from(self.n_docs) * 6 / 10) as usize;
            let docs = self.sample_docs(&mut r, df);
            let tfs: Vec<u32> = (0..docs.len())
                .map(|_| 1 + rng::geometric(&mut r, self.tf_p))
                .collect();
            let list = PostingList::from_columns(docs, tfs)?;
            // Lexical order == rank order thanks to zero padding, so rank-r
            // terms are cheap to find in tests and samplers.
            builder = builder.add_posting_list(&format!("t{rank:0width$}"), &list);
        }
        builder.build()
    }

    fn sample_docs(&self, r: &mut SeededRng, df: usize) -> Vec<u32> {
        let clustered = r.random_range(0.0..1.0) < self.cluster_fraction;
        if !clustered || df < 64 {
            return rng::sorted_distinct(r, df, self.n_docs);
        }
        // Clustered list: docs drawn from a handful of contiguous regions.
        let n_clusters = (df / 256).clamp(1, 64);
        let width = (self.n_docs / n_clusters as u32 / 4).max(512);
        let per = df / n_clusters;
        let mut docs = Vec::with_capacity(df);
        for _ in 0..n_clusters {
            let base = r.random_range(0..self.n_docs.saturating_sub(width).max(1));
            let take = per.min(width as usize / 2).max(1);
            for v in rng::sorted_distinct(r, take, width) {
                docs.push(base + v);
            }
        }
        docs.sort_unstable();
        docs.dedup();
        docs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_corpus_builds() {
        let idx = CorpusSpec::ccnews_like(Scale::Smoke).build().unwrap();
        assert_eq!(idx.n_docs(), 3_000);
        assert_eq!(idx.n_terms(), 2_500);
        assert!(idx.total_raw_bytes() > 0);
    }

    #[test]
    fn deterministic() {
        let a = CorpusSpec::ccnews_like(Scale::Smoke).build().unwrap();
        let b = CorpusSpec::ccnews_like(Scale::Smoke).build().unwrap();
        assert_eq!(a.total_data_bytes(), b.total_data_bytes());
        let t0 = a.term_id("t0001").unwrap();
        assert_eq!(a.term_info(t0).df, b.term_info(t0).df);
    }

    #[test]
    fn df_distribution_is_zipfian() {
        let idx = CorpusSpec::clueweb12_like(Scale::Smoke).build().unwrap();
        // Rank 1 term should have a much bigger list than rank 100.
        let top = idx.term_info(idx.term_id("t0001").unwrap()).df;
        let mid = idx.term_info(idx.term_id("t0100").unwrap()).df;
        let tail = idx.term_info(idx.term_id("t1900").unwrap()).df;
        // df clamping caps the head, so compare against a softer factor.
        assert!(top > mid * 3, "top {top} vs mid {mid}");
        assert!(mid > tail, "mid {mid} vs tail {tail}");
    }

    #[test]
    fn compression_beats_raw() {
        let idx = CorpusSpec::ccnews_like(Scale::Smoke).build().unwrap();
        assert!(
            idx.total_data_bytes() < idx.total_raw_bytes() / 2,
            "hybrid compression should at least halve the index: {} vs {}",
            idx.total_data_bytes(),
            idx.total_raw_bytes()
        );
    }

    #[test]
    fn scale_parse() {
        assert_eq!("smoke".parse::<Scale>().unwrap(), Scale::Smoke);
        assert_eq!("full".parse::<Scale>().unwrap(), Scale::Full);
        assert!("giant".parse::<Scale>().is_err());
    }
}
