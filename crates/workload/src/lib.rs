//! Workload generation for the BOSS evaluation.
//!
//! Four generators, all deterministic under an explicit seed:
//!
//! * [`streams`] — the seven synthetic integer streams of Figure 3
//!   (uniform sparse/dense, clustered sparse/dense, outlier 10 %/30 %,
//!   Zipf);
//! * [`corpus`] — synthetic web corpora standing in for ClueWeb12 and
//!   CC-News: Zipfian document frequencies, clustered docID locality, and
//!   geometric term frequencies (see `DESIGN.md` for why these match the
//!   properties the paper's experiments exercise);
//! * [`queries`] — the Q1–Q6 query types of Table II and a TREC-like
//!   sampler that draws terms by document frequency;
//! * [`arrivals`] — open-loop arrival processes (Poisson and bursty
//!   MMPP-2) feeding the serving harness in `boss-engine`.
//!
//! # Example
//!
//! ```
//! use boss_workload::corpus::{CorpusSpec, Scale};
//! use boss_workload::queries::QuerySampler;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let index = CorpusSpec::ccnews_like(Scale::Smoke).build()?;
//! let mut sampler = QuerySampler::new(&index, 42)?;
//! let queries = sampler.trec_like_mix(12)?;
//! assert_eq!(queries.len(), 12);
//! # Ok(())
//! # }
//! ```

pub mod arrivals;
pub mod corpus;
pub mod queries;
pub mod rng;
pub mod streams;
