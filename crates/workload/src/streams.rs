//! The seven synthetic integer streams of Figure 3.
//!
//! The paper compresses the *d-gap* form of each stream. For the uniform
//! and clustered docID-set streams, integers are drawn from the stated
//! ranges, sorted and deduplicated, and converted to gaps; the outlier and
//! Zipf streams are value streams compressed directly (their definitions —
//! a normal around 2^5 with outliers, and Zipf's law — describe the
//! values, not positions).

use crate::rng::{self, SeededRng};
use serde::{Deserialize, Serialize};

/// Identifies one of the seven Figure 3 synthetic stream shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StreamKind {
    /// Unique integers uniform over `[0, 2^28)`, delta-encoded.
    UniformSparse,
    /// Unique integers uniform over `[0, 2^26)`, delta-encoded.
    UniformDense,
    /// Uniform draws restricted to random clusters, sparse range.
    ClusterSparse,
    /// Uniform draws restricted to random clusters, dense range.
    ClusterDense,
    /// Normal(2^5, 20) values with 10 % large outliers.
    Outlier10,
    /// Normal(2^5, 20) values with 30 % large outliers.
    Outlier30,
    /// Zipf-distributed values.
    Zipf,
}

/// All seven stream kinds, in the order Figure 3 plots them.
pub const ALL_STREAMS: [StreamKind; 7] = [
    StreamKind::UniformSparse,
    StreamKind::UniformDense,
    StreamKind::ClusterSparse,
    StreamKind::ClusterDense,
    StreamKind::Outlier10,
    StreamKind::Outlier30,
    StreamKind::Zipf,
];

impl StreamKind {
    /// The label used in the figure.
    pub fn label(self) -> &'static str {
        match self {
            StreamKind::UniformSparse => "uniform-sparse",
            StreamKind::UniformDense => "uniform-dense",
            StreamKind::ClusterSparse => "cluster-sparse",
            StreamKind::ClusterDense => "cluster-dense",
            StreamKind::Outlier10 => "outlier-10%",
            StreamKind::Outlier30 => "outlier-30%",
            StreamKind::Zipf => "zipf",
        }
    }
}

impl std::fmt::Display for StreamKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

const SPARSE_RANGE: u32 = 1 << 28;
const DENSE_RANGE: u32 = 1 << 26;

/// Generates the stream: `n` integers (the paper uses 10 M; tests and the
/// default bench scale use less) ready to feed a codec.
pub fn generate(kind: StreamKind, n: usize, seed: u64) -> Vec<u32> {
    let mut r = rng::rng(seed ^ kind as u64);
    match kind {
        StreamKind::UniformSparse => gaps_of_sorted_set(&mut r, n, SPARSE_RANGE),
        StreamKind::UniformDense => gaps_of_sorted_set(&mut r, n, DENSE_RANGE),
        StreamKind::ClusterSparse => clustered_gaps(&mut r, n, SPARSE_RANGE),
        StreamKind::ClusterDense => clustered_gaps(&mut r, n, DENSE_RANGE),
        StreamKind::Outlier10 => outliers(&mut r, n, 0.10),
        StreamKind::Outlier30 => outliers(&mut r, n, 0.30),
        StreamKind::Zipf => zipf_values(&mut r, n),
    }
}

fn to_gaps(sorted: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(sorted.len());
    let mut prev = 0u32;
    for (i, &v) in sorted.iter().enumerate() {
        out.push(if i == 0 { v } else { v - prev });
        prev = v;
    }
    out
}

fn gaps_of_sorted_set(r: &mut SeededRng, n: usize, range: u32) -> Vec<u32> {
    let n = n.min(range as usize);
    let set = rng::sorted_distinct(r, n, range);
    to_gaps(&set)
}

fn clustered_gaps(r: &mut SeededRng, n: usize, range: u32) -> Vec<u32> {
    use rand::RngExt;
    // ~1000-element clusters, each spanning a tiny slice of the range so
    // that intra-cluster gaps stay small.
    let n = n.min(range as usize / 2);
    let n_clusters = (n / 1000).max(1);
    let cluster_width = (range / 16384).max(2048);
    let per_cluster = n / n_clusters;
    let mut values: Vec<u32> = Vec::with_capacity(n);
    for _ in 0..n_clusters {
        let base = r.random_range(0..range.saturating_sub(cluster_width).max(1));
        let count = per_cluster.min(cluster_width as usize / 2);
        for v in rng::sorted_distinct(r, count, cluster_width) {
            values.push(base + v);
        }
    }
    values.sort_unstable();
    values.dedup();
    to_gaps(&values)
}

fn outliers(r: &mut SeededRng, n: usize, frac: f64) -> Vec<u32> {
    use rand::RngExt;
    (0..n)
        .map(|_| {
            if r.random_range(0.0..1.0) < frac {
                // Outlier: large value needing many bits.
                r.random_range(1 << 16..1 << 27)
            } else {
                rng::normal(r, 32.0, 20.0).max(0.0) as u32
            }
        })
        .collect()
}

fn zipf_values(r: &mut SeededRng, n: usize) -> Vec<u32> {
    let z = rng::Zipf::new(1 << 16, 1.4);
    (0..n).map(|_| z.sample(r) as u32 - 1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        for kind in ALL_STREAMS {
            let a = generate(kind, 2000, 9);
            let b = generate(kind, 2000, 9);
            assert_eq!(a, b, "{kind}");
            let c = generate(kind, 2000, 10);
            assert_ne!(a, c, "{kind} should vary by seed");
        }
    }

    #[test]
    fn lengths_match_request() {
        for kind in [
            StreamKind::UniformSparse,
            StreamKind::Outlier10,
            StreamKind::Zipf,
        ] {
            assert_eq!(generate(kind, 5000, 1).len(), 5000);
        }
    }

    #[test]
    fn sparse_gaps_larger_than_dense() {
        let sparse = generate(StreamKind::UniformSparse, 20_000, 3);
        let dense = generate(StreamKind::UniformDense, 20_000, 3);
        let mean = |v: &[u32]| v.iter().map(|&x| u64::from(x)).sum::<u64>() as f64 / v.len() as f64;
        assert!(mean(&sparse) > 2.0 * mean(&dense));
    }

    #[test]
    fn clustered_gaps_mostly_small() {
        let gaps = generate(StreamKind::ClusterSparse, 20_000, 4);
        let small = gaps.iter().filter(|&&g| g < 64).count();
        assert!(
            small as f64 > gaps.len() as f64 * 0.9,
            "clustering should make most gaps tiny ({small}/{})",
            gaps.len()
        );
    }

    #[test]
    fn outlier_fraction_visible() {
        let o10 = generate(StreamKind::Outlier10, 20_000, 5);
        let o30 = generate(StreamKind::Outlier30, 20_000, 5);
        let big = |v: &[u32]| v.iter().filter(|&&x| x >= 1 << 16).count() as f64 / v.len() as f64;
        assert!((big(&o10) - 0.10).abs() < 0.02);
        assert!((big(&o30) - 0.30).abs() < 0.02);
    }

    #[test]
    fn zipf_mostly_tiny_values() {
        let z = generate(StreamKind::Zipf, 20_000, 6);
        let zeros = z.iter().filter(|&&x| x == 0).count();
        assert!(
            zeros as f64 > z.len() as f64 * 0.1,
            "rank 1 dominates: {zeros}"
        );
        let mut sorted = z.clone();
        sorted.sort_unstable();
        assert!(
            sorted[z.len() / 2] < 16,
            "median is tiny: {}",
            sorted[z.len() / 2]
        );
    }

    #[test]
    fn labels_unique() {
        let mut labels: Vec<_> = ALL_STREAMS.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 7);
    }
}
