//! Deterministic random-sampling helpers shared by the generators.
//!
//! Hand-rolled distributions (Box–Muller normal, inverse-transform
//! geometric, cumulative-table Zipf) keep the dependency set to `rand` +
//! `rand_chacha` while staying reproducible across platforms.

use rand::RngExt;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The workspace-standard seeded RNG.
pub type SeededRng = ChaCha8Rng;

/// Creates the standard RNG from a `u64` seed.
pub fn rng(seed: u64) -> SeededRng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// One sample from a normal distribution via Box–Muller.
pub fn normal(rng: &mut SeededRng, mean: f64, sd: f64) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    mean + sd * z
}

/// One sample from a geometric distribution (number of failures before
/// success, so the support starts at 0) with success probability `p`.
///
/// # Panics
///
/// Panics if `p` is not in `(0, 1]`.
pub fn geometric(rng: &mut SeededRng, p: f64) -> u32 {
    assert!(p > 0.0 && p <= 1.0, "p must be in (0, 1]");
    if p >= 1.0 {
        return 0;
    }
    let u: f64 = rng.random_range(f64::EPSILON..1.0);
    (u.ln() / (1.0 - p).ln()).floor().min(1e6) as u32
}

/// A Zipf sampler over ranks `1..=n` with exponent `s`, using a
/// precomputed cumulative table and binary search.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf support must be non-empty");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Samples a rank in `1..=n`.
    pub fn sample(&self, rng: &mut SeededRng) -> usize {
        let u: f64 = rng.random_range(0.0..1.0);
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("finite"))
        {
            Ok(i) | Err(i) => (i + 1).min(self.cdf.len()),
        }
    }

    /// The unnormalized weight of rank `k` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0 or out of range.
    pub fn weight(&self, k: usize) -> f64 {
        assert!(k >= 1 && k <= self.cdf.len(), "rank out of range");
        if k == 1 {
            self.cdf[0]
        } else {
            self.cdf[k - 1] - self.cdf[k - 2]
        }
    }
}

/// Draws `count` *distinct* sorted values from `0..range`.
///
/// Rejection-free for the common `count << range` case: draws with
/// replacement, dedups, and tops up until the target is met.
///
/// # Panics
///
/// Panics if `count > range`.
pub fn sorted_distinct(rng: &mut SeededRng, count: usize, range: u32) -> Vec<u32> {
    assert!(
        count as u64 <= u64::from(range),
        "cannot draw {count} distinct values from {range}"
    );
    if count == 0 {
        return Vec::new();
    }
    // Dense draws are faster by scanning.
    if count as u64 * 3 >= u64::from(range) {
        let mut out = Vec::with_capacity(count);
        let mut remaining = count as u64;
        let mut pool = u64::from(range);
        for v in 0..range {
            if remaining == 0 {
                break;
            }
            // Select v with probability remaining/pool (sequential sampling).
            if rng.random_range(0..pool) < remaining {
                out.push(v);
                remaining -= 1;
            }
            pool -= 1;
        }
        return out;
    }
    let mut vals: Vec<u32> = (0..count).map(|_| rng.random_range(0..range)).collect();
    loop {
        vals.sort_unstable();
        vals.dedup();
        if vals.len() >= count {
            vals.truncate(count);
            return vals;
        }
        let missing = count - vals.len();
        for _ in 0..missing {
            vals.push(rng.random_range(0..range));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = rng(7);
        let mut b = rng(7);
        let va: Vec<u32> = (0..10).map(|_| a.random_range(0..1000)).collect();
        let vb: Vec<u32> = (0..10).map(|_| b.random_range(0..1000)).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn normal_mean_roughly_right() {
        let mut r = rng(1);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| normal(&mut r, 32.0, 20.0)).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 32.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn geometric_support_and_mean() {
        let mut r = rng(2);
        let samples: Vec<u32> = (0..20_000).map(|_| geometric(&mut r, 0.5)).collect();
        let mean: f64 = samples.iter().map(|&x| f64::from(x)).sum::<f64>() / samples.len() as f64;
        // Mean of failures-before-success at p=0.5 is 1.
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        assert_eq!(geometric(&mut r, 1.0), 0);
    }

    #[test]
    fn zipf_rank1_most_frequent() {
        let z = Zipf::new(100, 1.0);
        let mut r = rng(3);
        let mut counts = [0u32; 101];
        for _ in 0..20_000 {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[10]);
        assert!(counts[1] > counts[50] * 5);
    }

    #[test]
    fn zipf_weights_sum_to_one() {
        let z = Zipf::new(50, 1.2);
        let total: f64 = (1..=50).map(|k| z.weight(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sorted_distinct_properties() {
        let mut r = rng(4);
        for &(count, range) in &[(0usize, 10u32), (10, 1000), (900, 1000), (1000, 1000)] {
            let v = sorted_distinct(&mut r, count, range);
            assert_eq!(v.len(), count);
            for w in v.windows(2) {
                assert!(w[0] < w[1], "strictly increasing");
            }
            assert!(v.iter().all(|&x| x < range));
        }
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn sorted_distinct_impossible_panics() {
        let mut r = rng(5);
        let _ = sorted_distinct(&mut r, 11, 10);
    }
}
