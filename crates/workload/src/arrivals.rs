//! Deterministic open-loop arrival processes for the serving harness.
//!
//! Production search traffic is open-loop: queries arrive whether or not
//! the device is ready. Two arrival shapes cover the regimes the serving
//! experiments need:
//!
//! * [`ArrivalKind::Poisson`] — memoryless arrivals at a constant rate,
//!   the M/·/k textbook case whose queueing behavior has a closed-form
//!   sanity check;
//! * [`ArrivalKind::Bursty`] — a two-state Markov-modulated Poisson
//!   process (MMPP-2): a *calm* state at a low rate and a *burst* state
//!   at [`BURST_RATE_MULTIPLIER`]× the calm rate, with exponentially
//!   distributed state dwell times. The long-run mean inter-arrival time
//!   matches the Poisson process at the same `mean_interarrival`, but
//!   arrivals clump — the tail-latency regime diurnal spikes and
//!   thundering herds create.
//!
//! Both are pure functions of `(kind, n, mean_interarrival, seed)`: the
//! same arguments produce the same arrival trace on every platform, which
//! is what lets the serving layer promise bit-identical admission and
//! drop decisions at any worker count.

use crate::rng::{self, SeededRng};
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// Burst-state arrival rate relative to the calm state of
/// [`ArrivalKind::Bursty`].
pub const BURST_RATE_MULTIPLIER: f64 = 8.0;

/// Fraction of time the bursty process spends in the burst state.
pub const BURST_TIME_FRACTION: f64 = 0.15;

/// Mean dwell time in the burst state, in units of the overall mean
/// inter-arrival time (so a burst spans many consecutive arrivals).
pub const BURST_DWELL_ARRIVALS: f64 = 24.0;

/// Shape of an open-loop arrival process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArrivalKind {
    /// Constant-rate memoryless arrivals.
    Poisson,
    /// Two-state MMPP: calm / burst at [`BURST_RATE_MULTIPLIER`]× calm.
    Bursty,
}

impl ArrivalKind {
    /// The label used in bench output.
    pub fn label(self) -> &'static str {
        match self {
            ArrivalKind::Poisson => "poisson",
            ArrivalKind::Bursty => "bursty",
        }
    }
}

impl std::fmt::Display for ArrivalKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for ArrivalKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "poisson" => Ok(ArrivalKind::Poisson),
            "bursty" | "mmpp" => Ok(ArrivalKind::Bursty),
            other => Err(format!(
                "unknown arrival process {other:?}: expected poisson or bursty"
            )),
        }
    }
}

/// One exponential inter-arrival sample with the given mean, in cycles.
/// Clamped to at least one cycle so arrival times strictly advance
/// within a state (simultaneous arrivals would make queue-bound
/// accounting ambiguous).
fn exp_interval(r: &mut SeededRng, mean: f64) -> u64 {
    let u: f64 = r.random_range(f64::EPSILON..1.0);
    (-mean * u.ln()).round().max(1.0) as u64
}

/// Generates `n` absolute arrival times in cycles, strictly increasing,
/// with the long-run mean inter-arrival time `mean_interarrival` (cycles,
/// clamped to ≥ 1). Deterministic in every argument.
pub fn generate(kind: ArrivalKind, n: usize, mean_interarrival: f64, seed: u64) -> Vec<u64> {
    let mean = mean_interarrival.max(1.0);
    let mut r = rng::rng(seed ^ 0x5e71_11c0 ^ kind as u64);
    let mut out = Vec::with_capacity(n);
    let mut t = 0u64;
    match kind {
        ArrivalKind::Poisson => {
            for _ in 0..n {
                t = t.saturating_add(exp_interval(&mut r, mean));
                out.push(t);
            }
        }
        ArrivalKind::Bursty => {
            // Solve the two rates so that the time-weighted mean rate
            // equals 1/mean: calm_rate·(1-f) + burst_rate·f = 1/mean with
            // burst_rate = M·calm_rate.
            let f = BURST_TIME_FRACTION;
            let m = BURST_RATE_MULTIPLIER;
            let calm_rate = 1.0 / (mean * ((1.0 - f) + m * f));
            let burst_rate = m * calm_rate;
            // Dwell means chosen so the stationary burst-time fraction
            // is `f`: dwell_burst/(dwell_burst + dwell_calm) = f.
            let dwell_burst = BURST_DWELL_ARRIVALS * mean;
            let dwell_calm = dwell_burst * (1.0 - f) / f;
            let mut in_burst = false;
            // Absolute time the current state ends.
            let mut state_end = exp_interval(&mut r, dwell_calm);
            while out.len() < n {
                let rate = if in_burst { burst_rate } else { calm_rate };
                let next = t.saturating_add(exp_interval(&mut r, 1.0 / rate));
                if next >= state_end {
                    // State switch; the pending arrival is resampled in
                    // the new state from the switch point (memorylessness
                    // makes this the textbook MMPP construction).
                    t = state_end;
                    in_burst = !in_burst;
                    let dwell = if in_burst { dwell_burst } else { dwell_calm };
                    state_end = state_end.saturating_add(exp_interval(&mut r, dwell));
                    continue;
                }
                t = next;
                out.push(t);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_gap(a: &[u64]) -> f64 {
        (a[a.len() - 1] - a[0]) as f64 / (a.len() - 1) as f64
    }

    #[test]
    fn deterministic_per_seed_and_distinct_across_seeds() {
        for kind in [ArrivalKind::Poisson, ArrivalKind::Bursty] {
            let a = generate(kind, 4000, 250.0, 7);
            let b = generate(kind, 4000, 250.0, 7);
            assert_eq!(a, b, "{kind}");
            let c = generate(kind, 4000, 250.0, 8);
            assert_ne!(a, c, "{kind} should vary by seed");
        }
    }

    #[test]
    fn strictly_increasing() {
        for kind in [ArrivalKind::Poisson, ArrivalKind::Bursty] {
            let a = generate(kind, 4000, 100.0, 3);
            for w in a.windows(2) {
                assert!(w[0] < w[1], "{kind}: {} !< {}", w[0], w[1]);
            }
        }
    }

    #[test]
    fn mean_interarrival_roughly_matches() {
        for kind in [ArrivalKind::Poisson, ArrivalKind::Bursty] {
            let a = generate(kind, 40_000, 500.0, 11);
            let m = mean_gap(&a);
            assert!(
                (m - 500.0).abs() < 75.0,
                "{kind}: long-run mean {m} far from 500"
            );
        }
    }

    #[test]
    fn bursty_clumps_more_than_poisson() {
        let mean = 400.0;
        let cv2 = |a: &[u64]| {
            let gaps: Vec<f64> = a.windows(2).map(|w| (w[1] - w[0]) as f64).collect();
            let m = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - m) * (g - m)).sum::<f64>() / gaps.len() as f64;
            var / (m * m)
        };
        let p = cv2(&generate(ArrivalKind::Poisson, 30_000, mean, 5));
        let b = cv2(&generate(ArrivalKind::Bursty, 30_000, mean, 5));
        // Poisson inter-arrivals have CV² ≈ 1; MMPP is overdispersed.
        assert!((p - 1.0).abs() < 0.25, "poisson CV² {p}");
        assert!(b > p * 1.5, "bursty CV² {b} not clearly above poisson {p}");
    }

    #[test]
    fn labels_round_trip() {
        for kind in [ArrivalKind::Poisson, ArrivalKind::Bursty] {
            let parsed: ArrivalKind = kind.label().parse().unwrap();
            assert_eq!(parsed, kind);
        }
        assert!("uniform".parse::<ArrivalKind>().is_err());
    }
}
