//! The Q1–Q6 query types of Table II and a TREC-like query sampler.

use crate::rng::{self, SeededRng};
use boss_index::{InvertedIndex, QueryExpr};
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// The six query types of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueryType {
    /// 1 term: `A`.
    Q1,
    /// 2 terms: `A AND B`.
    Q2,
    /// 2 terms: `A OR B`.
    Q3,
    /// 4 terms: `A AND B AND C AND D`.
    Q4,
    /// 4 terms: `A OR B OR C OR D`.
    Q5,
    /// 4 terms: `A AND (B OR C OR D)`.
    Q6,
}

/// All types in Table II order.
pub const ALL_QUERY_TYPES: [QueryType; 6] = [
    QueryType::Q1,
    QueryType::Q2,
    QueryType::Q3,
    QueryType::Q4,
    QueryType::Q5,
    QueryType::Q6,
];

impl QueryType {
    /// Number of terms the type takes.
    pub fn n_terms(self) -> usize {
        match self {
            QueryType::Q1 => 1,
            QueryType::Q2 | QueryType::Q3 => 2,
            QueryType::Q4 | QueryType::Q5 | QueryType::Q6 => 4,
        }
    }

    /// The figure label ("Q1".."Q6").
    pub fn label(self) -> &'static str {
        match self {
            QueryType::Q1 => "Q1",
            QueryType::Q2 => "Q2",
            QueryType::Q3 => "Q3",
            QueryType::Q4 => "Q4",
            QueryType::Q5 => "Q5",
            QueryType::Q6 => "Q6",
        }
    }

    /// Builds the Table II expression over `terms`.
    ///
    /// # Panics
    ///
    /// Panics if `terms.len() != self.n_terms()`.
    pub fn build(self, terms: &[String]) -> QueryExpr {
        assert_eq!(
            terms.len(),
            self.n_terms(),
            "{self:?} takes {} terms",
            self.n_terms()
        );
        let t = |i: usize| QueryExpr::term(terms[i].clone());
        match self {
            QueryType::Q1 => t(0),
            QueryType::Q2 => QueryExpr::and([t(0), t(1)]),
            QueryType::Q3 => QueryExpr::or([t(0), t(1)]),
            QueryType::Q4 => QueryExpr::and([t(0), t(1), t(2), t(3)]),
            QueryType::Q5 => QueryExpr::or([t(0), t(1), t(2), t(3)]),
            QueryType::Q6 => QueryExpr::and([t(0), QueryExpr::or([t(1), t(2), t(3)])]),
        }
    }
}

impl std::fmt::Display for QueryType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A typed query instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TypedQuery {
    /// Which Table II row this query instantiates.
    pub qtype: QueryType,
    /// The expression.
    pub expr: QueryExpr,
}

/// Why query sampling could not proceed. These conditions are reachable
/// from caller input (a tiny or degenerate corpus), so they are errors,
/// not panics.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SampleError {
    /// The index has no term with `df >= 2` to draw from.
    EmptyVocabulary,
    /// A query shape needs more distinct terms than the vocabulary has.
    NotEnoughTerms {
        /// Distinct terms the query shape requires.
        wanted: usize,
        /// Eligible terms the vocabulary offers.
        have: usize,
    },
    /// Rejection sampling failed to find enough *distinct* terms (an
    /// extremely skewed df distribution can starve the draw).
    SamplingStalled {
        /// Distinct terms the query shape requires.
        wanted: usize,
    },
}

impl std::fmt::Display for SampleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SampleError::EmptyVocabulary => {
                write!(f, "index vocabulary has no term with df >= 2")
            }
            SampleError::NotEnoughTerms { wanted, have } => write!(
                f,
                "query shape needs {wanted} distinct terms but the vocabulary has {have}"
            ),
            SampleError::SamplingStalled { wanted } => write!(
                f,
                "df-weighted sampling could not draw {wanted} distinct terms"
            ),
        }
    }
}

impl std::error::Error for SampleError {}

/// Samples query terms the way the TREC Terabyte tracks skew: terms drawn
/// proportionally to document frequency, excluding the ultra-rare tail
/// real users seldom type.
#[derive(Debug)]
pub struct QuerySampler {
    terms: Vec<String>,
    cumulative: Vec<u64>,
    rng: SeededRng,
}

impl QuerySampler {
    /// Builds a sampler over the index vocabulary.
    ///
    /// # Errors
    ///
    /// [`SampleError::EmptyVocabulary`] if no term has `df >= 2`.
    pub fn new(index: &InvertedIndex, seed: u64) -> Result<Self, SampleError> {
        let mut terms = Vec::new();
        let mut cumulative = Vec::new();
        let mut acc = 0u64;
        for id in index.term_ids() {
            let info = index.term_info(id);
            if info.df >= 2 {
                acc += u64::from(info.df);
                terms.push(info.text.clone());
                cumulative.push(acc);
            }
        }
        if terms.is_empty() {
            return Err(SampleError::EmptyVocabulary);
        }
        Ok(QuerySampler {
            terms,
            cumulative,
            rng: rng::rng(seed),
        })
    }

    fn sample_term(&mut self) -> String {
        // Non-empty by construction: `new` rejects empty vocabularies.
        let total = *self.cumulative.last().expect("vocabulary non-empty");
        let u = self.rng.random_range(0..total);
        let i = self.cumulative.partition_point(|&c| c <= u);
        self.terms[i].clone()
    }

    /// Samples `n` distinct terms.
    ///
    /// # Errors
    ///
    /// [`SampleError::NotEnoughTerms`] if the vocabulary has fewer than
    /// `n` eligible terms, [`SampleError::SamplingStalled`] if rejection
    /// sampling cannot realize `n` distinct draws.
    pub fn sample_terms(&mut self, n: usize) -> Result<Vec<String>, SampleError> {
        if n > self.terms.len() {
            return Err(SampleError::NotEnoughTerms {
                wanted: n,
                have: self.terms.len(),
            });
        }
        let mut out: Vec<String> = Vec::with_capacity(n);
        let mut guard = 0;
        while out.len() < n {
            let t = self.sample_term();
            if !out.contains(&t) {
                out.push(t);
            }
            guard += 1;
            if guard >= 10_000 {
                return Err(SampleError::SamplingStalled { wanted: n });
            }
        }
        Ok(out)
    }

    /// Samples one query of the given type.
    ///
    /// # Errors
    ///
    /// As for [`QuerySampler::sample_terms`].
    pub fn sample(&mut self, qtype: QueryType) -> Result<TypedQuery, SampleError> {
        let terms = self.sample_terms(qtype.n_terms())?;
        Ok(TypedQuery {
            qtype,
            expr: qtype.build(&terms),
        })
    }

    /// The paper's methodology: equal thirds of 1-, 2- and 4-term queries
    /// (the paper uses 100 each from TREC 2005/2006), each randomly
    /// assigned a compatible Table II type.
    ///
    /// # Errors
    ///
    /// As for [`QuerySampler::sample_terms`].
    pub fn trec_like_mix(&mut self, n: usize) -> Result<Vec<TypedQuery>, SampleError> {
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let qtype = match i % 3 {
                0 => QueryType::Q1,
                1 => {
                    if self.rng.random_range(0..2) == 0 {
                        QueryType::Q2
                    } else {
                        QueryType::Q3
                    }
                }
                _ => match self.rng.random_range(0..3) {
                    0 => QueryType::Q4,
                    1 => QueryType::Q5,
                    _ => QueryType::Q6,
                },
            };
            out.push(self.sample(qtype)?);
        }
        Ok(out)
    }

    /// Samples `per_type` queries of *each* Table II type (the per-type
    /// breakdowns of Figures 9–16).
    ///
    /// # Errors
    ///
    /// As for [`QuerySampler::sample_terms`].
    pub fn per_type_suite(&mut self, per_type: usize) -> Result<Vec<TypedQuery>, SampleError> {
        let mut out = Vec::with_capacity(per_type * 6);
        for qtype in ALL_QUERY_TYPES {
            for _ in 0..per_type {
                out.push(self.sample(qtype)?);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{CorpusSpec, Scale};

    #[test]
    fn table2_shapes() {
        let terms: Vec<String> = (0..4).map(|i| format!("w{i}")).collect();
        assert_eq!(QueryType::Q1.build(&terms[..1]).to_string(), "\"w0\"");
        assert_eq!(
            QueryType::Q2.build(&terms[..2]).to_string(),
            "(\"w0\" AND \"w1\")"
        );
        assert_eq!(
            QueryType::Q3.build(&terms[..2]).to_string(),
            "(\"w0\" OR \"w1\")"
        );
        assert_eq!(
            QueryType::Q6.build(&terms).to_string(),
            "(\"w0\" AND (\"w1\" OR \"w2\" OR \"w3\"))"
        );
        assert_eq!(QueryType::Q4.n_terms(), 4);
        assert_eq!(QueryType::Q5.label(), "Q5");
    }

    #[test]
    #[should_panic(expected = "takes 2 terms")]
    fn build_wrong_arity_panics() {
        let _ = QueryType::Q2.build(&["a".into()]);
    }

    #[test]
    fn sampler_prefers_frequent_terms() {
        let idx = CorpusSpec::ccnews_like(Scale::Smoke).build().unwrap();
        let mut s = QuerySampler::new(&idx, 11).unwrap();
        let mut top_hits = 0;
        for _ in 0..200 {
            let t = s.sample_terms(1).unwrap().remove(0);
            let df = idx.term_info(idx.term_id(&t).unwrap()).df;
            if df > 100 {
                top_hits += 1;
            }
        }
        assert!(
            top_hits > 100,
            "df-weighted sampling should mostly pick frequent terms ({top_hits}/200)"
        );
    }

    #[test]
    fn sampled_queries_are_valid_and_distinct() {
        let idx = CorpusSpec::ccnews_like(Scale::Smoke).build().unwrap();
        let mut s = QuerySampler::new(&idx, 12).unwrap();
        for qt in ALL_QUERY_TYPES {
            let q = s.sample(qt).unwrap();
            q.expr.validate(16).unwrap();
            let terms = q.expr.terms();
            assert_eq!(terms.len(), qt.n_terms(), "distinct terms");
        }
    }

    #[test]
    fn trec_mix_composition() {
        let idx = CorpusSpec::ccnews_like(Scale::Smoke).build().unwrap();
        let mut s = QuerySampler::new(&idx, 13).unwrap();
        let qs = s.trec_like_mix(30).unwrap();
        assert_eq!(qs.len(), 30);
        let ones = qs.iter().filter(|q| q.qtype.n_terms() == 1).count();
        let twos = qs.iter().filter(|q| q.qtype.n_terms() == 2).count();
        let fours = qs.iter().filter(|q| q.qtype.n_terms() == 4).count();
        assert_eq!((ones, twos, fours), (10, 10, 10));
    }

    #[test]
    fn per_type_suite_covers_all() {
        let idx = CorpusSpec::ccnews_like(Scale::Smoke).build().unwrap();
        let mut s = QuerySampler::new(&idx, 14).unwrap();
        let qs = s.per_type_suite(3).unwrap();
        assert_eq!(qs.len(), 18);
        for qt in ALL_QUERY_TYPES {
            assert_eq!(qs.iter().filter(|q| q.qtype == qt).count(), 3);
        }
    }

    #[test]
    fn sampler_is_deterministic() {
        let idx = CorpusSpec::ccnews_like(Scale::Smoke).build().unwrap();
        let a: Vec<_> = QuerySampler::new(&idx, 7)
            .unwrap()
            .trec_like_mix(9)
            .unwrap();
        let b: Vec<_> = QuerySampler::new(&idx, 7)
            .unwrap()
            .trec_like_mix(9)
            .unwrap();
        assert_eq!(a, b);
    }
}
