//! The decoded-block cache must be invisible to every observable batch
//! result: for all three engines, serial and 1/2/4-thread executor runs
//! are bit-identical to each other *and* to the cache-disabled run. The
//! cache is wall-clock only — simulated cycles, traffic, and counters
//! never depend on it (see the `boss-engine` determinism contract).

use boss_core::BossConfig;
use boss_engine::{BatchExecutor, Boss, EngineBatch, Iiu, Lucene, SearchEngine};
use boss_iiu::IiuConfig;
use boss_index::{InvertedIndex, QueryExpr};
use boss_luceneish::LuceneConfig;
use boss_workload::corpus::{CorpusSpec, Scale};
use boss_workload::queries::{QuerySampler, ALL_QUERY_TYPES};

const CACHE_BLOCKS: usize = 256;

fn corpus() -> InvertedIndex {
    CorpusSpec::ccnews_like(Scale::Smoke)
        .build()
        .expect("corpus builds")
}

/// A mixed suite covering all six Table II query types, repeated so that
/// the cache sees real cross-query block reuse.
fn suite(index: &InvertedIndex) -> Vec<QueryExpr> {
    let mut sampler = QuerySampler::new(index, 11).unwrap();
    let mut queries = Vec::new();
    for _ in 0..2 {
        for qt in ALL_QUERY_TYPES {
            for _ in 0..2 {
                queries.push(sampler.sample(qt).unwrap().expr);
            }
        }
    }
    queries
}

fn assert_batches_identical(a: &EngineBatch, b: &EngineBatch, ctx: &str) {
    assert_eq!(a.makespan_cycles, b.makespan_cycles, "{ctx}: makespan");
    assert_eq!(a.mem, b.mem, "{ctx}: merged MemStats");
    assert_eq!(a.eval, b.eval, "{ctx}: merged EvalCounts");
    assert_eq!(a.outcomes.len(), b.outcomes.len(), "{ctx}: outcome count");
    for (i, (x, y)) in a.outcomes.iter().zip(&b.outcomes).enumerate() {
        assert_eq!(x, y, "{ctx}: outcome {i}");
    }
}

/// Runs `cached` at 1/2/4 executor threads and `uncached` serially;
/// every combination must produce the same batch, and the serial cached
/// engine must actually be exercising its cache.
fn check_cache_invisible<E: SearchEngine + Send>(
    cached: &E,
    uncached: &E,
    queries: &[QueryExpr],
    k: usize,
) {
    let label = cached.label();
    let baseline = BatchExecutor::with_threads(1)
        .run(uncached, queries, k)
        .expect("runs");
    for threads in [1usize, 2, 4] {
        let with_cache = BatchExecutor::with_threads(threads)
            .run(cached, queries, k)
            .expect("runs");
        assert_batches_identical(
            &with_cache,
            &baseline,
            &format!("{label} cached at {threads} threads vs uncached serial"),
        );
    }
    assert!(
        uncached.block_cache_stats().is_none(),
        "{label}: cache disabled must report no stats"
    );
    // The executor forks workers, so the template engine's own cache
    // stays cold; run one query directly to prove the cache is live.
    let mut probe = cached.fork();
    probe.search(&queries[0], k).expect("probe query runs");
    probe.search(&queries[0], k).expect("probe query repeats");
    let stats = probe
        .block_cache_stats()
        .unwrap_or_else(|| panic!("{label}: cache enabled must report stats"));
    assert!(
        stats.hits > 0,
        "{label}: repeating a query must hit the cache (stats: {stats:?})"
    );
}

#[test]
fn boss_cache_invisible_at_every_thread_count() {
    let index = corpus();
    let queries = suite(&index);
    let cfg = BossConfig::with_cores(4).with_k(50);
    let cached = Boss::new(&index, cfg.clone().with_block_cache(CACHE_BLOCKS));
    let uncached = Boss::new(&index, cfg);
    check_cache_invisible(&cached, &uncached, &queries, 50);
}

#[test]
fn iiu_cache_invisible_at_every_thread_count() {
    let index = corpus();
    let queries = suite(&index);
    let cfg = IiuConfig::with_cores(4);
    let cached = Iiu::new(&index, cfg.clone().with_block_cache(CACHE_BLOCKS));
    let uncached = Iiu::new(&index, cfg);
    check_cache_invisible(&cached, &uncached, &queries, 50);
}

#[test]
fn lucene_cache_invisible_at_every_thread_count() {
    let index = corpus();
    let queries = suite(&index);
    let cfg = LuceneConfig::with_threads(4);
    let cached = Lucene::new(&index, cfg.clone().with_block_cache(CACHE_BLOCKS));
    let uncached = Lucene::new(&index, cfg);
    check_cache_invisible(&cached, &uncached, &queries, 50);
}
