//! Property tests for the open-loop serving simulator: the invariants
//! the ISSUE's determinism and robustness contract rests on, checked
//! over randomized service tables, arrival traces, and configurations.

use boss_engine::{
    simulate, Disposition, OverloadConfig, ServePolicy, ServiceTable, ServingConfig,
    ALL_SERVE_POLICIES,
};
use proptest::prelude::*;

/// A random scenario: per-query service cycles, arrival gaps, and a
/// serving configuration. Gaps (not absolute times) keep the trace
/// non-decreasing by construction, like the real generators.
#[derive(Debug, Clone)]
struct Scenario {
    svc: Vec<u64>,
    pruned: Option<Vec<u64>>,
    arrivals: Vec<u64>,
    config: ServingConfig,
}

fn any_policy() -> impl Strategy<Value = ServePolicy> {
    prop_oneof![
        Just(ServePolicy::Fifo),
        Just(ServePolicy::Sjf),
        Just(ServePolicy::Edf),
        Just(ServePolicy::EdfShed),
    ]
}

fn any_scenario() -> impl Strategy<Value = Scenario> {
    (
        prop::collection::vec((1u64..2_000, 1u64..500), 1..200),
        (any::<bool>(), any::<bool>()),
        1usize..5,
        1usize..32,
        (any::<bool>(), 1u64..20_000),
        any_policy(),
    )
        .prop_map(
            |(svc_and_gaps, (with_pruned, degrade), servers, queue_bound, deadline, policy)| {
                let svc: Vec<u64> = svc_and_gaps.iter().map(|&(s, _)| s).collect();
                // Pruned level: each query at ~1/4 its normal cost.
                let pruned = with_pruned.then(|| svc.iter().map(|&s| (s / 4).max(1)).collect());
                let deadline = deadline.0.then_some(deadline.1);
                let arrivals: Vec<u64> = svc_and_gaps
                    .iter()
                    .scan(0u64, |t, &(_, gap)| {
                        *t += gap;
                        Some(*t)
                    })
                    .collect();
                Scenario {
                    svc,
                    pruned,
                    arrivals,
                    config: ServingConfig {
                        servers,
                        queue_bound,
                        deadline_cycles: deadline,
                        policy,
                        overload: degrade.then(OverloadConfig::default),
                    },
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The admission queue never exceeds its configured bound — there is
    /// no unbounded buffering under any load, policy, or controller
    /// state.
    #[test]
    fn queue_never_exceeds_its_bound(sc in any_scenario()) {
        let table = ServiceTable::from_cycles(sc.svc.clone(), sc.pruned.clone(), None);
        let run = simulate(&sc.config, &sc.arrivals, &table);
        prop_assert!(
            run.max_queue_depth <= sc.config.queue_bound.max(1),
            "depth {} over bound {}",
            run.max_queue_depth,
            sc.config.queue_bound
        );
    }

    /// Every query is accounted for exactly once, and the counters agree
    /// with the per-query records.
    #[test]
    fn dispositions_partition_the_arrivals(sc in any_scenario()) {
        let table = ServiceTable::from_cycles(sc.svc.clone(), sc.pruned.clone(), None);
        let run = simulate(&sc.config, &sc.arrivals, &table);
        let n = sc.arrivals.len();
        prop_assert_eq!(run.records.len(), n);
        prop_assert_eq!(run.served() + run.rejected + run.expired + run.shed, n);
        let mut counts = [0usize; 4];
        for r in &run.records {
            match r.disposition {
                Disposition::Served { .. } => counts[0] += 1,
                Disposition::Rejected => counts[1] += 1,
                Disposition::Expired { .. } => counts[2] += 1,
                Disposition::Shed { .. } => counts[3] += 1,
            }
        }
        prop_assert_eq!(counts, [run.served(), run.rejected, run.expired, run.shed]);
        prop_assert_eq!(
            run.served_by_level.iter().sum::<usize>(),
            run.served()
        );
    }

    /// An expired query is never served: every served query *starts*
    /// strictly before its absolute deadline, and under the shed policy
    /// it also *finishes* by it.
    #[test]
    fn expired_queries_are_never_served(sc in any_scenario()) {
        let table = ServiceTable::from_cycles(sc.svc.clone(), sc.pruned.clone(), None);
        let run = simulate(&sc.config, &sc.arrivals, &table);
        let Some(d) = sc.config.deadline_cycles else { return Ok(()) };
        for (r, &arrival) in run.records.iter().zip(&sc.arrivals) {
            let abs = arrival.saturating_add(d);
            match r.disposition {
                Disposition::Served { start, finish, .. } => {
                    prop_assert!(start < abs, "served query started at {start} >= deadline {abs}");
                    if sc.config.policy == ServePolicy::EdfShed {
                        prop_assert!(finish <= abs, "shed policy served past deadline");
                    }
                }
                Disposition::Expired { at } => {
                    prop_assert!(at >= abs, "expired at {at} before its deadline {abs}");
                }
                _ => {}
            }
        }
        if sc.config.policy == ServePolicy::EdfShed {
            prop_assert_eq!(run.served_late, 0);
        }
    }

    /// The simulation is a pure function: replaying the same inputs
    /// yields identical records, for every policy.
    #[test]
    fn simulate_is_deterministic(sc in any_scenario()) {
        let table = ServiceTable::from_cycles(sc.svc.clone(), sc.pruned.clone(), None);
        for policy in ALL_SERVE_POLICIES {
            let config = ServingConfig { policy, ..sc.config.clone() };
            let a = simulate(&config, &sc.arrivals, &table);
            let b = simulate(&config, &sc.arrivals, &table);
            prop_assert_eq!(a.records, b.records, "{:?}", policy);
        }
    }

    /// Policy orderings are total and deterministic under ties: with no
    /// deadlines EDF's key is constant, so its tie-break must reproduce
    /// FIFO exactly; with uniform service times SJF's must too.
    #[test]
    fn tie_breaks_reproduce_arrival_order(
        gaps in prop::collection::vec(1u64..400, 1..150),
        servers in 1usize..5,
        queue_bound in 1usize..32,
        svc in 1u64..2_000,
    ) {
        let arrivals: Vec<u64> = gaps
            .iter()
            .scan(0u64, |t, &g| { *t += g; Some(*t) })
            .collect();
        let table = ServiceTable::from_cycles(vec![svc; arrivals.len()], None, None);
        let base = ServingConfig {
            servers,
            queue_bound,
            deadline_cycles: None,
            policy: ServePolicy::Fifo,
            overload: None,
        };
        let fifo = simulate(&base, &arrivals, &table);
        for policy in [ServePolicy::Edf, ServePolicy::Sjf] {
            let run = simulate(&ServingConfig { policy, ..base.clone() }, &arrivals, &table);
            prop_assert_eq!(&fifo.records, &run.records, "{:?} ties broke from FIFO", policy);
        }
    }

    /// Sojourn percentiles are monotone in `p` and bracketed by the
    /// extremes of the served set.
    #[test]
    fn percentiles_are_monotone(sc in any_scenario()) {
        let table = ServiceTable::from_cycles(sc.svc.clone(), sc.pruned.clone(), None);
        let run = simulate(&sc.config, &sc.arrivals, &table);
        let p50 = run.sojourn_percentile(0.50);
        let p99 = run.sojourn_percentile(0.99);
        let p100 = run.sojourn_percentile(1.0);
        prop_assert!(p50 <= p99 && p99 <= p100);
        if run.served() > 0 {
            prop_assert!(run.sojourn_percentile(0.0) >= 1, "service is at least one cycle");
        }
    }
}
