//! The executor's hard guarantee, checked end to end: batch results are
//! bit-identical at every thread count, for every engine and every BOSS
//! early-termination mode.

use boss_core::{BossConfig, EtMode};
use boss_engine::{BatchExecutor, Boss, EngineBatch, Iiu, Lucene, SearchEngine};
use boss_iiu::IiuConfig;
use boss_index::{InvertedIndex, QueryExpr};
use boss_luceneish::LuceneConfig;
use boss_workload::corpus::{CorpusSpec, Scale};
use boss_workload::queries::{QuerySampler, ALL_QUERY_TYPES};

fn corpus() -> InvertedIndex {
    CorpusSpec::ccnews_like(Scale::Smoke)
        .build()
        .expect("corpus builds")
}

/// A mixed suite covering all six Table II query types.
fn suite(index: &InvertedIndex) -> Vec<QueryExpr> {
    let mut sampler = QuerySampler::new(index, 7).unwrap();
    let mut queries = Vec::new();
    for qt in ALL_QUERY_TYPES {
        for _ in 0..3 {
            queries.push(sampler.sample(qt).unwrap().expr);
        }
    }
    queries
}

fn assert_batches_identical(a: &EngineBatch, b: &EngineBatch, ctx: &str) {
    assert_eq!(a.makespan_cycles, b.makespan_cycles, "{ctx}: makespan");
    assert_eq!(a.mem, b.mem, "{ctx}: merged MemStats");
    assert_eq!(a.eval, b.eval, "{ctx}: merged EvalCounts");
    assert_eq!(a.outcomes.len(), b.outcomes.len(), "{ctx}: outcome count");
    for (i, (x, y)) in a.outcomes.iter().zip(&b.outcomes).enumerate() {
        // QueryOutcome equality covers hits, cycles, per-query traffic,
        // and per-query counters.
        assert_eq!(x, y, "{ctx}: outcome {i}");
    }
}

fn check_thread_invariance<E: SearchEngine + Send>(engine: &E, queries: &[QueryExpr], k: usize) {
    let label = engine.label();
    let serial = BatchExecutor::with_threads(1)
        .run(engine, queries, k)
        .expect("runs");
    for threads in [2usize, 4] {
        let parallel = BatchExecutor::with_threads(threads)
            .run(engine, queries, k)
            .expect("runs");
        assert_batches_identical(&parallel, &serial, &format!("{label} at {threads} threads"));
    }
}

#[test]
fn boss_deterministic_across_threads_all_et_modes() {
    let index = corpus();
    let queries = suite(&index);
    for et in [EtMode::Exhaustive, EtMode::BlockOnly, EtMode::Full] {
        let engine = Boss::new(&index, BossConfig::with_cores(4).with_et(et).with_k(50));
        check_thread_invariance(&engine, &queries, 50);
    }
}

#[test]
fn iiu_deterministic_across_threads() {
    let index = corpus();
    let queries = suite(&index);
    let engine = Iiu::new(&index, IiuConfig::with_cores(4));
    check_thread_invariance(&engine, &queries, 50);
}

#[test]
fn lucene_deterministic_across_threads() {
    let index = corpus();
    let queries = suite(&index);
    let engine = Lucene::new(&index, LuceneConfig::with_threads(4));
    check_thread_invariance(&engine, &queries, 50);
}

#[test]
fn sjf_schedule_is_also_thread_invariant() {
    // SJF reorders the simulated schedule; that reordering must come
    // from work estimates, never from OS-thread completion order.
    let index = corpus();
    let queries = suite(&index);
    let engine = Boss::new(&index, BossConfig::with_cores(4).with_k(50));
    let exec = |threads| {
        BatchExecutor::with_threads(threads)
            .with_policy(boss_engine::SchedPolicy::Sjf)
            .run(&engine, &queries, 50)
            .expect("runs")
    };
    let serial = exec(1);
    for threads in [2usize, 4] {
        assert_batches_identical(
            &exec(threads),
            &serial,
            &format!("SJF at {threads} threads"),
        );
    }
}
