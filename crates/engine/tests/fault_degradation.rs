//! Fault-degradation through the engine layer: the [`BatchExecutor`]'s
//! bit-identical-at-every-thread-count contract must survive an active
//! SCM fault plan, for both degradation policies.

use boss_core::{BossConfig, DegradePolicy, EtMode};
use boss_engine::{BatchExecutor, Boss, SearchEngine};
use boss_index::{IndexBuilder, InvertedIndex, QueryExpr};
use boss_scm::FaultPlan;

fn corpus() -> InvertedIndex {
    // Several encoded blocks per list so block-granular faults land
    // mid-traversal, not just at list heads.
    let docs: Vec<String> = (0u32..1500)
        .map(|i| {
            let mut t = String::from("common");
            let h = i.wrapping_mul(2654435761);
            if h % 2 == 0 {
                t.push_str(" alpha");
            }
            if h % 3 == 0 {
                t.push_str(" beta beta");
            }
            if h % 7 == 0 {
                t.push_str(" gamma");
            }
            t
        })
        .collect();
    IndexBuilder::new()
        .add_documents(docs.iter().map(String::as_str))
        .build()
        .unwrap()
}

fn queries() -> Vec<QueryExpr> {
    (0..12)
        .map(|i| match i % 4 {
            0 => QueryExpr::term("alpha"),
            1 => QueryExpr::and([QueryExpr::term("alpha"), QueryExpr::term("beta")]),
            2 => QueryExpr::or([QueryExpr::term("beta"), QueryExpr::term("gamma")]),
            _ => QueryExpr::term("common"),
        })
        .collect()
}

fn skip_block_config(seed: u64, rate: f64) -> BossConfig {
    BossConfig::with_cores(2)
        .with_et(EtMode::Exhaustive)
        .with_fault_plan(Some(FaultPlan::quiet(seed).with_uncorrectable_rate(rate)))
        .with_degrade(DegradePolicy::SkipBlock)
}

#[test]
fn skip_block_batches_are_bit_identical_at_1_2_4_threads() {
    let idx = corpus();
    let qs = queries();
    let eng = Boss::new(&idx, skip_block_config(40, 0.5));
    let base = BatchExecutor::with_threads(1).run(&eng, &qs, 10).unwrap();
    assert!(
        base.eval.blocks_skipped_fault > 0,
        "the plan must actually drop blocks for this test to mean anything"
    );
    for threads in [2usize, 4] {
        let b = BatchExecutor::with_threads(threads)
            .run(&eng, &qs, 10)
            .unwrap();
        assert_eq!(b.makespan_cycles, base.makespan_cycles, "{threads} threads");
        assert_eq!(b.mem, base.mem, "{threads} threads");
        assert_eq!(b.eval, base.eval, "{threads} threads");
        assert_eq!(
            b.eval.blocks_skipped_fault, base.eval.blocks_skipped_fault,
            "{threads} threads"
        );
        for (a, s) in b.outcomes.iter().zip(&base.outcomes) {
            assert_eq!(a, s, "{threads} threads");
        }
    }
}

#[test]
fn fail_query_surfaces_the_fault_through_the_executor() {
    let idx = corpus();
    let qs = queries();
    let cfg = BossConfig::with_cores(2)
        .with_fault_plan(Some(FaultPlan::quiet(40).with_uncorrectable_rate(1.0)));
    let eng = Boss::new(&idx, cfg);
    for threads in [1usize, 2, 4] {
        let err = BatchExecutor::with_threads(threads)
            .run(&eng, &qs, 10)
            .unwrap_err();
        assert!(
            matches!(err, boss_index::Error::ReadFault { .. }),
            "{threads} threads: {err}"
        );
        // No partial results leak into the caller's engine accumulators.
        assert_eq!(eng.mem_stats().total_bytes(), 0);
    }
}

#[test]
fn quiet_plan_batch_equals_no_plan_batch() {
    // The invariance contract at the engine layer: an installed-but-silent
    // plan plus either degradation policy changes no batch observable.
    let idx = corpus();
    let qs = queries();
    let run = |cfg: BossConfig| {
        BatchExecutor::with_threads(2)
            .run(&Boss::new(&idx, cfg), &qs, 10)
            .unwrap()
    };
    let base = run(BossConfig::with_cores(2));
    for cfg in [
        BossConfig::with_cores(2).with_fault_plan(Some(FaultPlan::quiet(17))),
        BossConfig::with_cores(2)
            .with_fault_plan(Some(FaultPlan::quiet(17)))
            .with_degrade(DegradePolicy::SkipBlock),
        BossConfig::with_cores(2).with_degrade(DegradePolicy::SkipBlock),
    ] {
        let b = run(cfg);
        assert_eq!(b.makespan_cycles, base.makespan_cycles);
        assert_eq!(b.mem, base.mem);
        assert_eq!(b.eval, base.eval);
        assert_eq!(b.outcomes, base.outcomes);
    }
    assert_eq!(base.eval.blocks_skipped_fault, 0);
    assert_eq!(base.mem.faulted_reads, 0);
}

#[test]
fn skip_block_repeated_runs_are_identical() {
    // Same plan, same batch, fresh engines: byte-for-byte repeatable.
    let idx = corpus();
    let qs = queries();
    let run = || {
        BatchExecutor::with_threads(3)
            .run(&Boss::new(&idx, skip_block_config(9, 0.3)), &qs, 10)
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.outcomes, b.outcomes);
    assert_eq!(a.mem, b.mem);
    assert_eq!(a.eval, b.eval);
}
