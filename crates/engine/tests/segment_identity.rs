//! Engines opened from a SPIMI segment directory must be bit-identical —
//! hits, cycles, traffic, counters — to the same engines over the
//! in-memory build of the same corpus, including under sharding. This is
//! the engine-level face of the index-level merge bit-identity guarantee.

use boss_core::BossConfig;
use boss_engine::{BatchExecutor, Boss, Iiu, Lucene, SearchEngine, ShardTiming, Sharded};
use boss_iiu::IiuConfig;
use boss_index::{InvertedIndex, QueryExpr};
use boss_luceneish::LuceneConfig;
use boss_workload::corpus::{CorpusSpec, Scale};
use boss_workload::queries::{QuerySampler, ALL_QUERY_TYPES};
use std::path::PathBuf;

fn segment_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("boss-seg-identity-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn both_indexes(n_segments: u32) -> (InvertedIndex, InvertedIndex, PathBuf) {
    let spec = CorpusSpec::ccnews_like(Scale::Smoke);
    let dir = segment_dir(&format!("s{n_segments}"));
    spec.build_segments(&dir, n_segments)
        .expect("segment build");
    let from_segments = boss_engine::open_segments(&dir).expect("open segment dir");
    let in_memory = spec.build().expect("in-memory build");
    (in_memory, from_segments, dir)
}

fn suite(index: &InvertedIndex) -> Vec<QueryExpr> {
    let mut sampler = QuerySampler::new(index, 13).unwrap();
    let mut queries = Vec::new();
    for qt in ALL_QUERY_TYPES {
        for _ in 0..2 {
            queries.push(sampler.sample(qt).unwrap().expr);
        }
    }
    queries
}

fn assert_engine_identical<E: SearchEngine + Send>(mem: &E, seg: &E, queries: &[QueryExpr]) {
    let a = BatchExecutor::with_threads(2)
        .run(mem, queries, 20)
        .expect("in-memory batch");
    let b = BatchExecutor::with_threads(2)
        .run(seg, queries, 20)
        .expect("segment batch");
    let label = mem.label();
    assert_eq!(a.makespan_cycles, b.makespan_cycles, "{label}: makespan");
    assert_eq!(a.mem, b.mem, "{label}: MemStats");
    assert_eq!(a.eval, b.eval, "{label}: EvalCounts");
    assert_eq!(a.outcomes, b.outcomes, "{label}: outcomes");
}

#[test]
fn merged_index_is_bit_identical() {
    let (mem, seg, dir) = both_indexes(3);
    // Index-level equality covers vocab, postings, BlockMeta, block-max.
    assert_eq!(mem, seg);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn all_engines_identical_on_segment_loaded_index() {
    let (mem, seg, dir) = both_indexes(4);
    let queries = suite(&mem);
    assert_engine_identical(
        &Boss::new(&mem, BossConfig::with_cores(4).with_k(20)),
        &Boss::new(&seg, BossConfig::with_cores(4).with_k(20)),
        &queries,
    );
    assert_engine_identical(
        &Iiu::new(&mem, IiuConfig::with_cores(4)),
        &Iiu::new(&seg, IiuConfig::with_cores(4)),
        &queries,
    );
    assert_engine_identical(
        &Lucene::new(&mem, LuceneConfig::with_threads(4)),
        &Lucene::new(&seg, LuceneConfig::with_threads(4)),
        &queries,
    );
    std::fs::remove_dir_all(&dir).ok();
}

fn sharded_boss<'a>(
    index: &'a InvertedIndex,
    split: &'a boss_index::shard::ShardedIndex,
) -> Sharded<'a, Boss<'a>> {
    let make = |idx: &'a InvertedIndex| Boss::new(idx, BossConfig::with_cores(2).with_k(20));
    let leaves: Vec<Vec<Boss<'a>>> = split.shards().iter().map(|s| vec![make(s)]).collect();
    Sharded::new(make(index), split, leaves, ShardTiming::Logical)
}

#[test]
fn sharded_engine_identical_on_segment_loaded_index() {
    let (mem, seg, dir) = both_indexes(2);
    let queries = suite(&mem);
    for n_shards in [2u32, 4] {
        let split_mem = boss_index::shard::ShardedIndex::split(&mem, n_shards).expect("split");
        let split_seg = boss_index::shard::ShardedIndex::split(&seg, n_shards).expect("split");
        let a = sharded_boss(&mem, &split_mem);
        let b = sharded_boss(&seg, &split_seg);
        assert_engine_identical(&a, &b, &queries);
    }
    std::fs::remove_dir_all(&dir).ok();
}
