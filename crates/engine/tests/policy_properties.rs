//! Property: the scheduling policy is a performance knob, not a
//! correctness knob — FIFO and SJF produce identical top-k results and
//! identical merged stats for any sampled batch.

use std::sync::OnceLock;

use boss_core::BossConfig;
use boss_engine::{BatchExecutor, Boss, SchedPolicy};
use boss_index::InvertedIndex;
use boss_workload::corpus::{CorpusSpec, Scale};
use boss_workload::queries::QuerySampler;
use proptest::prelude::*;

fn index() -> &'static InvertedIndex {
    static INDEX: OnceLock<InvertedIndex> = OnceLock::new();
    INDEX.get_or_init(|| {
        CorpusSpec::ccnews_like(Scale::Smoke)
            .build()
            .expect("corpus builds")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn fifo_and_sjf_agree_on_results(
        seed in 0u64..10_000,
        n in 1usize..16,
        cores in 1u32..6,
        k in prop::sample::select(vec![5usize, 20, 100]),
    ) {
        let index = index();
        let mut sampler = QuerySampler::new(index, seed).unwrap();
        let queries: Vec<_> = sampler.trec_like_mix(n).unwrap().into_iter().map(|t| t.expr).collect();
        let engine = Boss::new(index, BossConfig::with_cores(cores).with_k(k));
        let run = |policy| {
            BatchExecutor::with_threads(2)
                .with_policy(policy)
                .run(&engine, &queries, k)
                .expect("sampled queries plan")
        };
        let fifo = run(SchedPolicy::Fifo);
        let sjf = run(SchedPolicy::Sjf);
        prop_assert_eq!(fifo.outcomes.len(), sjf.outcomes.len());
        for (a, b) in fifo.outcomes.iter().zip(&sjf.outcomes) {
            prop_assert_eq!(&a.hits, &b.hits);
        }
        // Stat merges are order-independent, so the policies agree on
        // the aggregates too; only the makespan may differ.
        prop_assert_eq!(&fifo.mem, &sjf.mem);
        prop_assert_eq!(&fifo.eval, &sjf.eval);
    }
}
