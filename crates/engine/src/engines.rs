//! [`SearchEngine`] adapters for the three simulated systems.
//!
//! Each adapter owns the underlying simulator plus the accumulated
//! [`MemStats`]/[`EvalCounts`] of every query it has executed, and
//! supplies the scheduling hooks (`gang_width`, `work_estimate`,
//! bandwidth roofline) the [`BatchExecutor`](crate::BatchExecutor)
//! needs. The hook implementations reproduce the per-system batch
//! drivers the bench crate used to hand-write, constant for constant.

use crate::SearchEngine;
use boss_core::{BlockCacheStats, BossConfig, BossDevice, EvalCounts, QueryOutcome, QueryPlan};
use boss_iiu::{IiuConfig, IiuEngine};
use boss_index::{Error, InvertedIndex, QueryExpr};
use boss_luceneish::{LuceneConfig, LuceneEngine};
use boss_scm::MemStats;

/// The BOSS accelerator as a [`SearchEngine`].
#[derive(Debug)]
pub struct Boss<'a> {
    device: BossDevice<'a>,
    mem: MemStats,
    eval: EvalCounts,
}

impl<'a> Boss<'a> {
    /// A BOSS device over `index` with zeroed accumulators.
    pub fn new(index: &'a InvertedIndex, config: BossConfig) -> Self {
        Boss {
            device: BossDevice::new(index, config),
            mem: MemStats::new(),
            eval: EvalCounts::default(),
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &BossConfig {
        self.device.config()
    }

    /// The underlying device (e.g. for `search_host_merged`).
    pub fn device(&self) -> &BossDevice<'a> {
        &self.device
    }

    /// Mutable access to the underlying device.
    pub fn device_mut(&mut self) -> &mut BossDevice<'a> {
        &mut self.device
    }

    /// Executes an oversized union via the host-merged path
    /// (Section IV-D), accumulating its stats like [`SearchEngine::search`].
    ///
    /// # Errors
    ///
    /// [`Error::InvalidQuery`] for oversized non-union shapes, plus the
    /// usual planning errors.
    pub fn search_host_merged(
        &mut self,
        expr: &QueryExpr,
        k: usize,
    ) -> Result<QueryOutcome, Error> {
        let out = self.device.search_host_merged(expr, k)?;
        self.mem.merge(&out.mem);
        self.eval.merge(&out.eval);
        Ok(out)
    }

    fn plan(&self, expr: &QueryExpr) -> Result<QueryPlan, Error> {
        QueryPlan::from_expr(self.device.index(), expr, self.device.config())
    }
}

impl SearchEngine for Boss<'_> {
    fn label(&self) -> String {
        format!(
            "{}x{}",
            self.config().et_mode.label(),
            self.config().n_cores
        )
    }

    fn clock_ghz(&self) -> f64 {
        self.config().clock_ghz
    }

    fn lanes(&self) -> usize {
        self.config().n_cores as usize
    }

    fn search(&mut self, expr: &QueryExpr, k: usize) -> Result<QueryOutcome, Error> {
        let out = self.device.search_expr(expr, k)?;
        self.mem.merge(&out.mem);
        self.eval.merge(&out.eval);
        Ok(out)
    }

    fn search_seeded(
        &mut self,
        expr: &QueryExpr,
        k: usize,
        floor: f32,
    ) -> Result<QueryOutcome, Error> {
        let out = self.device.search_expr_seeded(expr, k, floor)?;
        self.mem.merge(&out.mem);
        self.eval.merge(&out.eval);
        Ok(out)
    }

    fn mem_stats(&self) -> &MemStats {
        &self.mem
    }

    fn eval_counts(&self) -> &EvalCounts {
        &self.eval
    }

    fn reset_stats(&mut self) {
        self.mem = MemStats::new();
        self.eval = EvalCounts::default();
    }

    fn fork(&self) -> Self {
        Boss::new(self.device.index(), self.device.config().clone())
    }

    fn gang_width(&self, expr: &QueryExpr) -> usize {
        match self.plan(expr) {
            Ok(plan) => plan
                .n_distinct_terms()
                .div_ceil(self.config().max_terms_per_core)
                .max(1)
                .min(self.lanes()),
            Err(_) => 1,
        }
    }

    fn work_estimate(&self, expr: &QueryExpr) -> u64 {
        match self.plan(expr) {
            Ok(plan) => plan
                .groups()
                .iter()
                .flatten()
                .map(|&t| u64::from(self.device.index().list(t).df()))
                .sum(),
            Err(_) => 0,
        }
    }

    fn bandwidth_limit_cycles(&self, mem: &MemStats) -> u64 {
        mem.busy_cycles / u64::from(self.config().memory.channels).max(1)
    }

    fn block_cache_stats(&self) -> Option<BlockCacheStats> {
        self.device.block_cache_stats()
    }
}

/// The IIU baseline accelerator as a [`SearchEngine`].
#[derive(Debug)]
pub struct Iiu<'a> {
    index: &'a InvertedIndex,
    engine: IiuEngine<'a>,
    mem: MemStats,
    eval: EvalCounts,
}

impl<'a> Iiu<'a> {
    /// An IIU device over `index` with zeroed accumulators.
    pub fn new(index: &'a InvertedIndex, config: IiuConfig) -> Self {
        Iiu {
            index,
            engine: IiuEngine::new(index, config),
            mem: MemStats::new(),
            eval: EvalCounts::default(),
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &IiuConfig {
        self.engine.config()
    }

    /// The underlying engine.
    pub fn engine(&self) -> &IiuEngine<'a> {
        &self.engine
    }
}

impl SearchEngine for Iiu<'_> {
    fn label(&self) -> String {
        format!("IIUx{}", self.config().n_cores)
    }

    fn clock_ghz(&self) -> f64 {
        self.config().clock_ghz
    }

    fn lanes(&self) -> usize {
        self.config().n_cores as usize
    }

    fn search(&mut self, expr: &QueryExpr, k: usize) -> Result<QueryOutcome, Error> {
        let out = self.engine.execute(expr, k)?;
        self.mem.merge(&out.mem);
        self.eval.merge(&out.eval);
        Ok(out)
    }

    fn mem_stats(&self) -> &MemStats {
        &self.mem
    }

    fn eval_counts(&self) -> &EvalCounts {
        &self.eval
    }

    fn reset_stats(&mut self) {
        self.mem = MemStats::new();
        self.eval = EvalCounts::default();
    }

    fn fork(&self) -> Self {
        Iiu::new(self.index, self.config().clone())
    }

    fn bandwidth_limit_cycles(&self, mem: &MemStats) -> u64 {
        mem.busy_cycles / u64::from(self.config().memory.channels.max(1))
    }

    fn block_cache_stats(&self) -> Option<BlockCacheStats> {
        self.engine.block_cache_stats()
    }
}

/// The Lucene-like software baseline as a [`SearchEngine`].
#[derive(Debug)]
pub struct Lucene<'a> {
    index: &'a InvertedIndex,
    engine: LuceneEngine<'a>,
    mem: MemStats,
    eval: EvalCounts,
}

impl<'a> Lucene<'a> {
    /// A Lucene-like engine over `index` with zeroed accumulators.
    pub fn new(index: &'a InvertedIndex, config: LuceneConfig) -> Self {
        Lucene {
            index,
            engine: LuceneEngine::new(index, config),
            mem: MemStats::new(),
            eval: EvalCounts::default(),
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &LuceneConfig {
        self.engine.config()
    }

    /// The underlying engine.
    pub fn engine(&self) -> &LuceneEngine<'a> {
        &self.engine
    }
}

impl SearchEngine for Lucene<'_> {
    fn label(&self) -> String {
        format!("Lucene x{}", self.config().n_threads)
    }

    fn clock_ghz(&self) -> f64 {
        self.config().clock_ghz
    }

    fn lanes(&self) -> usize {
        self.config().n_threads as usize
    }

    fn search(&mut self, expr: &QueryExpr, k: usize) -> Result<QueryOutcome, Error> {
        let out = self.engine.execute(expr, k)?;
        self.mem.merge(&out.mem);
        self.eval.merge(&out.eval);
        Ok(out)
    }

    fn mem_stats(&self) -> &MemStats {
        &self.mem
    }

    fn eval_counts(&self) -> &EvalCounts {
        &self.eval
    }

    fn reset_stats(&mut self) {
        self.mem = MemStats::new();
        self.eval = EvalCounts::default();
    }

    fn fork(&self) -> Self {
        Lucene::new(self.index, self.config().clone())
    }

    fn bandwidth_limit_cycles(&self, mem: &MemStats) -> u64 {
        // The host core clock (2.7 GHz) differs from the 1 GHz memory
        // clock the occupancy is counted in, so the roofline converts
        // through floating point rather than integer division.
        (mem.busy_cycles as f64 / f64::from(self.config().memory.channels.max(1))
            * self.config().clock_ghz) as u64
    }

    fn bandwidth_gbps(&self, mem: &MemStats, makespan_cycles: u64) -> f64 {
        // Host-side view: logical bytes, not device-granule traffic.
        if makespan_cycles == 0 {
            return 0.0;
        }
        let seconds = makespan_cycles as f64 / (self.clock_ghz() * 1e9);
        mem.total_bytes() as f64 / (seconds * 1e9)
    }

    fn block_cache_stats(&self) -> Option<BlockCacheStats> {
        self.engine.block_cache_stats()
    }
}
