//! Multi-device sharding: a scatter-gather coordinator over per-shard
//! engines with replica/health-aware routing.
//!
//! [`Sharded`] wraps any [`SearchEngine`] and removes the single-device
//! assumption: each shard of a [`ShardedIndex`] is served by one or more
//! independent *leaf* engines (its own simulated SCM channels, block
//! cache, and fault plan), and the coordinator fans a query out to every
//! shard, merges the per-shard top-k into the global top-k, and steers
//! each shard's traffic toward its healthiest replica.
//!
//! # Timing modes
//!
//! Because per-shard posting lists re-chunk into different blocks than
//! the unsplit index (and WAND thresholds evolve per shard), per-shard
//! *timing* cannot be summed back into the single-device figure numbers
//! exactly. The coordinator therefore has two modes:
//!
//! * [`ShardTiming::Logical`] — the figure-preserving mode. A quiet
//!   *canonical* engine over the unsplit index executes every query
//!   first; its cycles/traffic/counters (and its errors) are the
//!   outcome's, so every TSV-observable stays byte-identical to the
//!   single-device run at any shard count. The scatter-gather then runs
//!   for real and supplies the *hits*: under quiet fault plans the merge
//!   is bit-identical to the canonical hits (shards carry global BM25
//!   statistics — see [`boss_index::shard`]), and under a shard-targeted
//!   fault plan the hits honestly reflect the degradation.
//! * [`ShardTiming::ScatterGather`] — the honest multi-device model used
//!   by the shard-scaling bench: cycles = slowest selected leaf + link
//!   transfer of `hits × 8` bytes + root merge, mirroring
//!   `boss_core::pool::MemoryPool`; traffic and counters are summed over
//!   the selected leaves; the bandwidth roofline divides by the shard
//!   count (each shard owns its own channels).
//!
//! # Health-aware routing
//!
//! Each (shard, replica) leaf accumulates its own fault counters
//! ([`MemStats::fault_counts`] plus `blocks_skipped_fault`). Per query,
//! replicas are attempted in ascending accumulated-fault order (replica
//! id breaks ties) and the first **clean** outcome (no fault events, no
//! fault-skipped blocks) wins. Clean outcomes are bit-identical across
//! replicas — the fault model marks a counter whenever it perturbs
//! timing — so this early exit never changes results. When no attempt is
//! clean, every replica has been tried and the winner is the minimum of
//! `(blocks_skipped_fault, fault_events, replica id)`, a per-query
//! deterministic key. Attempt/selection tallies are exposed only through
//! [`Sharded::shard_stats`] — like block-cache counters, they depend on
//! query chunking across executor workers and must never leak into a
//! [`QueryOutcome`].

use crate::{EvalCounts, MemStats, QueryOutcome, SearchEngine};
use boss_core::pool::InterconnectConfig;
use boss_index::shard::ShardedIndex;
use boss_index::{Error, InvertedIndex, QueryExpr, SearchHit};
use boss_scm::FaultCounts;

/// How [`Sharded`] charges time for a scatter-gather query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardTiming {
    /// Figure-preserving: timing, traffic, counters, and errors come from
    /// the canonical single-device engine; the shards supply the hits.
    Logical,
    /// Honest multi-device model: slowest leaf + interconnect transfer +
    /// root merge, with traffic summed over the selected leaves.
    ScatterGather,
}

/// Health/telemetry snapshot of one (shard, replica) leaf engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardReplicaStats {
    /// Shard index.
    pub shard: usize,
    /// Replica index within the shard.
    pub replica: usize,
    /// Queries routed to this replica (including unselected attempts).
    pub attempts: u64,
    /// Queries whose outcome this replica supplied.
    pub selected: u64,
    /// Accumulated fault counters, labeled per class.
    pub faults: FaultCounts,
    /// Blocks dropped under `SkipBlock` degradation on this replica.
    pub blocks_skipped_fault: u64,
}

/// A sharded multi-device system presented as one [`SearchEngine`].
///
/// `leaves[s][r]` is replica `r` of shard `s`. With no shard layer
/// (built via [`Sharded::single`]) every call passes straight through to
/// the canonical engine, so a `--shards 1` bench run is byte-identical
/// to the pre-shard code path by construction.
#[derive(Debug)]
pub struct Sharded<'a, E: SearchEngine> {
    canonical: E,
    sharded: Option<&'a ShardedIndex>,
    leaves: Vec<Vec<E>>,
    timing: ShardTiming,
    link: InterconnectConfig,
    mem: MemStats,
    eval: EvalCounts,
    attempts: Vec<Vec<u64>>,
    selected: Vec<Vec<u64>>,
}

/// Aggregates of one scatter-gather fan-out (selected outcomes only).
struct Scatter {
    per_shard: Vec<Vec<boss_index::SearchHit>>,
    slowest_leaf: u64,
    mem: MemStats,
    eval: EvalCounts,
}

impl<'a, E: SearchEngine> Sharded<'a, E> {
    /// A pass-through wrapper with no shard layer: every query runs on
    /// `canonical` alone.
    pub fn single(canonical: E) -> Self {
        Sharded {
            canonical,
            sharded: None,
            leaves: Vec::new(),
            timing: ShardTiming::Logical,
            link: InterconnectConfig::default(),
            mem: MemStats::new(),
            eval: EvalCounts::default(),
            attempts: Vec::new(),
            selected: Vec::new(),
        }
    }

    /// A scatter-gather coordinator: `leaves[s]` holds the replica
    /// engines of shard `s` of `sharded`, and `canonical` is the
    /// single-device engine over the unsplit index.
    ///
    /// # Panics
    ///
    /// When `leaves` does not provide at least one replica per shard —
    /// a construction bug in the caller, not a runtime condition.
    pub fn new(
        canonical: E,
        sharded: &'a ShardedIndex,
        leaves: Vec<Vec<E>>,
        timing: ShardTiming,
    ) -> Self {
        assert_eq!(
            leaves.len(),
            sharded.n_shards(),
            "one replica set per shard"
        );
        assert!(
            leaves.iter().all(|r| !r.is_empty()),
            "every shard needs at least one replica"
        );
        let attempts: Vec<Vec<u64>> = leaves.iter().map(|r| vec![0; r.len()]).collect();
        let selected = attempts.clone();
        Sharded {
            canonical,
            sharded: Some(sharded),
            leaves,
            timing,
            link: InterconnectConfig::default(),
            mem: MemStats::new(),
            eval: EvalCounts::default(),
            attempts,
            selected,
        }
    }

    /// Overrides the root interconnect (default: one CXL-like link).
    pub fn with_link(mut self, link: InterconnectConfig) -> Self {
        self.link = link;
        self
    }

    /// Number of shards (1 for a pass-through wrapper).
    pub fn n_shards(&self) -> usize {
        self.sharded.map_or(1, ShardedIndex::n_shards)
    }

    /// The canonical single-device engine.
    pub fn canonical(&self) -> &E {
        &self.canonical
    }

    /// Per-(shard, replica) health telemetry, in shard-then-replica
    /// order. Empty for a pass-through wrapper.
    pub fn shard_stats(&self) -> Vec<ShardReplicaStats> {
        let mut out = Vec::new();
        for (s, reps) in self.leaves.iter().enumerate() {
            for (r, leaf) in reps.iter().enumerate() {
                out.push(ShardReplicaStats {
                    shard: s,
                    replica: r,
                    attempts: self.attempts[s][r],
                    selected: self.selected[s][r],
                    faults: leaf.mem_stats().fault_counts(),
                    blocks_skipped_fault: leaf.eval_counts().blocks_skipped_fault,
                });
            }
        }
        out
    }

    /// Restricts `expr` to terms present in `shard`, or `None` when no
    /// document of the shard can match:
    ///
    /// * a `Term` absent from the shard vocabulary is `None`;
    /// * an `And` with any `None` child is `None` (every document lives
    ///   in exactly one shard, so a locally-absent conjunct rules the
    ///   whole shard out);
    /// * an `Or` drops `None` children (an absent disjunct contributes
    ///   nothing to any local document's score) and is `None` only when
    ///   all children are.
    fn rewrite(shard: &InvertedIndex, expr: &QueryExpr) -> Option<QueryExpr> {
        match expr {
            QueryExpr::Term(t) => shard.term_id(t).ok().map(|_| expr.clone()),
            QueryExpr::And(subs) => {
                let mut kept = Vec::with_capacity(subs.len());
                for s in subs {
                    kept.push(Self::rewrite(shard, s)?);
                }
                Some(QueryExpr::And(kept))
            }
            QueryExpr::Or(subs) => {
                let kept: Vec<QueryExpr> = subs
                    .iter()
                    .filter_map(|s| Self::rewrite(shard, s))
                    .collect();
                if kept.is_empty() {
                    None
                } else {
                    Some(QueryExpr::Or(kept))
                }
            }
        }
    }

    /// Replica attempt order for shard `s`: ascending accumulated fault
    /// load (fault events + fault-skipped blocks), replica id on ties.
    fn replica_order(&self, s: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.leaves[s].len()).collect();
        order.sort_by_key(|&r| {
            let leaf = &self.leaves[s][r];
            (
                leaf.mem_stats().fault_events() + leaf.eval_counts().blocks_skipped_fault,
                r,
            )
        });
        order
    }

    /// Fans `expr` out to every shard, routing within each shard's
    /// replicas by health, and returns the selected per-shard hit lists
    /// plus the aggregates of the selected outcomes.
    fn scatter_gather(
        &mut self,
        sh: &ShardedIndex,
        expr: &QueryExpr,
        k: usize,
    ) -> Result<Scatter, Error> {
        let n = sh.n_shards();
        let mut per_shard = Vec::with_capacity(n);
        let mut slowest_leaf = 0u64;
        let mut mem = MemStats::new();
        let mut eval = EvalCounts::default();
        // Running merge of the shards processed so far. Shards are
        // contiguous ascending document ranges visited in order, so once
        // it holds k hits its k-th score is a safe floor for every later
        // shard: a later-shard tie at that score loses the final merge
        // to the earlier shard's smaller-docID incumbents (see
        // `SearchEngine::search_seeded`). The floor is computed once per
        // shard, before the replica loop, so clean replica outcomes stay
        // bit-identical and health routing is undisturbed.
        let mut running: Vec<boss_index::SearchHit> = Vec::new();
        for s in 0..n {
            let Some(sub) = Self::rewrite(sh.shard(s), expr) else {
                per_shard.push(Vec::new());
                continue;
            };
            let floor = if running.len() >= k {
                running[k - 1].score
            } else {
                f32::NEG_INFINITY
            };
            let order = self.replica_order(s);
            let mut best: Option<(usize, QueryOutcome)> = None;
            let mut first_err: Option<Error> = None;
            for r in order {
                self.attempts[s][r] += 1;
                match self.leaves[s][r].search_seeded(&sub, k, floor) {
                    Ok(out) => {
                        let clean =
                            out.mem.fault_events() == 0 && out.eval.blocks_skipped_fault == 0;
                        let better = match &best {
                            None => true,
                            Some((br, bo)) => {
                                (out.eval.blocks_skipped_fault, out.mem.fault_events(), r)
                                    < (bo.eval.blocks_skipped_fault, bo.mem.fault_events(), *br)
                            }
                        };
                        if better {
                            best = Some((r, out));
                        }
                        if clean {
                            break;
                        }
                    }
                    Err(e) => {
                        if first_err.is_none() {
                            first_err = Some(e);
                        }
                    }
                }
            }
            match best {
                Some((r, out)) => {
                    self.selected[s][r] += 1;
                    slowest_leaf = slowest_leaf.max(out.cycles);
                    mem.merge(&out.mem);
                    eval.merge(&out.eval);
                    running.extend(out.hits.iter().copied());
                    running.sort_by(SearchHit::ranking_cmp);
                    running.truncate(k);
                    per_shard.push(out.hits);
                }
                // Every replica of this shard failed: the shard is down
                // and the query cannot be answered faithfully.
                None => {
                    return Err(first_err.unwrap_or(Error::InvalidQuery {
                        reason: "shard has no replicas".into(),
                    }))
                }
            }
        }
        Ok(Scatter {
            per_shard,
            slowest_leaf,
            mem,
            eval,
        })
    }

    fn uses_own_accumulators(&self) -> bool {
        self.sharded.is_some() && self.timing == ShardTiming::ScatterGather
    }
}

impl<E: SearchEngine> SearchEngine for Sharded<'_, E> {
    fn label(&self) -> String {
        self.canonical.label()
    }

    fn clock_ghz(&self) -> f64 {
        self.canonical.clock_ghz()
    }

    fn lanes(&self) -> usize {
        self.canonical.lanes()
    }

    fn search(&mut self, expr: &QueryExpr, k: usize) -> Result<QueryOutcome, Error> {
        let Some(sh) = self.sharded else {
            return self.canonical.search(expr, k);
        };
        match self.timing {
            ShardTiming::Logical => {
                // Canonical first: its errors and its stats are the
                // single-device ones the figures must keep reporting.
                let canon = self.canonical.search(expr, k)?;
                let scatter = self.scatter_gather(sh, expr, k)?;
                let hits = sh.merge_topk(&scatter.per_shard, k);
                Ok(QueryOutcome {
                    hits,
                    cycles: canon.cycles,
                    mem: canon.mem,
                    eval: canon.eval,
                })
            }
            ShardTiming::ScatterGather => {
                // Error parity with single-device planning: a term no
                // shard knows is globally unknown.
                for t in expr.terms() {
                    if sh.shards().iter().all(|s| s.term_id(t).is_err()) {
                        return Err(Error::UnknownTerm {
                            term: t.to_string(),
                        });
                    }
                }
                let scatter = self.scatter_gather(sh, expr, k)?;
                let bytes: u64 = scatter.per_shard.iter().map(|h| h.len() as u64 * 8).sum();
                let hits = sh.merge_topk(&scatter.per_shard, k);
                let cycles = scatter.slowest_leaf
                    + self.link.transfer_cycles(bytes)
                    + self.link.root_merge_cycles(sh.n_shards(), k);
                self.mem.merge(&scatter.mem);
                self.eval.merge(&scatter.eval);
                Ok(QueryOutcome {
                    hits,
                    cycles,
                    mem: scatter.mem,
                    eval: scatter.eval,
                })
            }
        }
    }

    fn mem_stats(&self) -> &MemStats {
        if self.uses_own_accumulators() {
            &self.mem
        } else {
            self.canonical.mem_stats()
        }
    }

    fn eval_counts(&self) -> &EvalCounts {
        if self.uses_own_accumulators() {
            &self.eval
        } else {
            self.canonical.eval_counts()
        }
    }

    fn reset_stats(&mut self) {
        self.canonical.reset_stats();
        for reps in &mut self.leaves {
            for leaf in reps {
                leaf.reset_stats();
            }
        }
        self.mem = MemStats::new();
        self.eval = EvalCounts::default();
        for a in &mut self.attempts {
            a.fill(0);
        }
        for s in &mut self.selected {
            s.fill(0);
        }
    }

    fn fork(&self) -> Self {
        Sharded {
            canonical: self.canonical.fork(),
            sharded: self.sharded,
            leaves: self
                .leaves
                .iter()
                .map(|reps| reps.iter().map(SearchEngine::fork).collect())
                .collect(),
            timing: self.timing,
            link: self.link,
            mem: MemStats::new(),
            eval: EvalCounts::default(),
            attempts: self.leaves.iter().map(|r| vec![0; r.len()]).collect(),
            selected: self.leaves.iter().map(|r| vec![0; r.len()]).collect(),
        }
    }

    fn gang_width(&self, expr: &QueryExpr) -> usize {
        self.canonical.gang_width(expr)
    }

    fn work_estimate(&self, expr: &QueryExpr) -> u64 {
        self.canonical.work_estimate(expr)
    }

    fn bandwidth_limit_cycles(&self, mem: &MemStats) -> u64 {
        let base = self.canonical.bandwidth_limit_cycles(mem);
        if self.uses_own_accumulators() {
            // Each shard owns its channels, so the aggregate roofline
            // scales with the shard count.
            base / self.n_shards() as u64
        } else {
            base
        }
    }

    fn bandwidth_gbps(&self, mem: &MemStats, makespan_cycles: u64) -> f64 {
        self.canonical.bandwidth_gbps(mem, makespan_cycles)
    }

    fn block_cache_stats(&self) -> Option<crate::BlockCacheStats> {
        self.canonical.block_cache_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Boss;
    use boss_core::{BossConfig, DegradePolicy};
    use boss_index::{IndexBuilder, InvertedIndex};
    use boss_scm::FaultPlan;

    fn corpus() -> InvertedIndex {
        let docs: Vec<String> = (0u32..240)
            .map(|i| {
                let mut t = String::from("alpha");
                if i % 2 == 0 {
                    t.push_str(" beta");
                }
                if i % 5 == 0 {
                    t.push_str(" gamma gamma");
                }
                if i < 3 {
                    t.push_str(" rare");
                }
                t
            })
            .collect();
        IndexBuilder::new()
            .add_documents(docs.iter().map(String::as_str))
            .build()
            .unwrap()
    }

    fn leaves<'a>(
        sh: &'a ShardedIndex,
        replicas: usize,
        plan_at: Option<(usize, FaultPlan)>,
    ) -> Vec<Vec<Boss<'a>>> {
        sh.shards()
            .iter()
            .enumerate()
            .map(|(s, shard)| {
                (0..replicas)
                    .map(|r| {
                        let plan = match &plan_at {
                            Some((fs, p)) if *fs == s && r == 0 => Some(p.clone()),
                            _ => None,
                        };
                        Boss::new(
                            shard,
                            BossConfig::default()
                                .with_fault_plan(plan)
                                .with_degrade(DegradePolicy::SkipBlock),
                        )
                    })
                    .collect()
            })
            .collect()
    }

    fn queries() -> Vec<QueryExpr> {
        vec![
            QueryExpr::term("beta"),
            QueryExpr::and([QueryExpr::term("beta"), QueryExpr::term("gamma")]),
            QueryExpr::or([QueryExpr::term("gamma"), QueryExpr::term("rare")]),
            QueryExpr::term("rare"),
        ]
    }

    #[test]
    fn logical_mode_outcome_is_bit_identical_to_single_device() {
        let idx = corpus();
        for n in [1u32, 2, 3, 4] {
            let sh = ShardedIndex::split(&idx, n).unwrap();
            let mut single = Sharded::single(Boss::new(&idx, BossConfig::default()));
            let mut multi = Sharded::new(
                Boss::new(&idx, BossConfig::default()),
                &sh,
                leaves(&sh, 1, None),
                ShardTiming::Logical,
            );
            for q in queries() {
                let a = single.search(&q, 10).unwrap();
                let b = multi.search(&q, 10).unwrap();
                assert_eq!(a.hits, b.hits, "{n} shards, {q}");
                assert_eq!(a.cycles, b.cycles, "{n} shards, {q}");
                assert_eq!(a.mem, b.mem, "{n} shards, {q}");
                assert_eq!(a.eval, b.eval, "{n} shards, {q}");
            }
            assert_eq!(single.mem_stats(), multi.mem_stats());
            assert_eq!(single.eval_counts(), multi.eval_counts());
        }
    }

    #[test]
    fn pruned_leaves_keep_sharded_hits_bit_identical() {
        let idx = corpus();
        let mut reference = Sharded::single(Boss::new(&idx, BossConfig::default()));
        for algo in boss_core::ALL_ALGORITHMS {
            for n in [2u32, 4] {
                let sh = ShardedIndex::split(&idx, n).unwrap();
                for timing in [ShardTiming::Logical, ShardTiming::ScatterGather] {
                    let pruned_leaves: Vec<Vec<Boss>> = sh
                        .shards()
                        .iter()
                        .map(|shard| {
                            vec![Boss::new(shard, BossConfig::default().with_algorithm(algo))]
                        })
                        .collect();
                    let mut multi = Sharded::new(
                        Boss::new(&idx, BossConfig::default()),
                        &sh,
                        pruned_leaves,
                        timing,
                    );
                    for q in queries() {
                        for k in [3usize, 10] {
                            let a = reference.search(&q, k).unwrap();
                            let b = multi.search(&q, k).unwrap();
                            assert_eq!(
                                a.hits, b.hits,
                                "{algo} over {n} shards ({timing:?}), k={k}, {q}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn rewrite_drops_absent_or_children_and_kills_absent_and() {
        let idx = corpus();
        // "rare" lives only in docs 0..3, i.e. only in shard 0 of 4.
        let sh = ShardedIndex::split(&idx, 4).unwrap();
        let last = sh.shard(3);
        let and = QueryExpr::and([QueryExpr::term("beta"), QueryExpr::term("rare")]);
        assert_eq!(Sharded::<Boss>::rewrite(last, &and), None);
        let or = QueryExpr::or([QueryExpr::term("beta"), QueryExpr::term("rare")]);
        assert_eq!(
            Sharded::<Boss>::rewrite(last, &or),
            Some(QueryExpr::Or(vec![QueryExpr::term("beta")]))
        );
        let first = sh.shard(0);
        assert_eq!(Sharded::<Boss>::rewrite(first, &and), Some(and));
    }

    #[test]
    fn scatter_gather_mode_sums_leaf_traffic_and_charges_the_link() {
        let idx = corpus();
        let sh = ShardedIndex::split(&idx, 4).unwrap();
        let mut multi = Sharded::new(
            Boss::new(&idx, BossConfig::default()),
            &sh,
            leaves(&sh, 1, None),
            ShardTiming::ScatterGather,
        );
        let q = QueryExpr::term("beta");
        let out = multi.search(&q, 10).unwrap();
        let link = InterconnectConfig::default();
        // Cycles include at least the link latency and the root merge.
        assert!(out.cycles > link.latency_ns + link.root_merge_cycles(4, 10));
        assert!(out.mem.total_bytes() > 0);
        // Hits still match the canonical engine bit for bit.
        let mut single = Sharded::single(Boss::new(&idx, BossConfig::default()));
        assert_eq!(out.hits, single.search(&q, 10).unwrap().hits);
        // Accumulators hold the summed leaf traffic, not the canonical's.
        assert_eq!(multi.mem_stats().total_bytes(), out.mem.total_bytes());
    }

    #[test]
    fn unknown_everywhere_is_unknown_term_in_both_modes() {
        let idx = corpus();
        let sh = ShardedIndex::split(&idx, 2).unwrap();
        for timing in [ShardTiming::Logical, ShardTiming::ScatterGather] {
            let mut multi = Sharded::new(
                Boss::new(&idx, BossConfig::default()),
                &sh,
                leaves(&sh, 1, None),
                timing,
            );
            assert!(matches!(
                multi.search(&QueryExpr::term("missing"), 5),
                Err(Error::UnknownTerm { .. })
            ));
        }
    }

    #[test]
    fn faulted_shard_with_clean_replica_matches_quiet_results() {
        let idx = corpus();
        let sh = ShardedIndex::split(&idx, 2).unwrap();
        let plan = FaultPlan::quiet(42).with_uncorrectable_rate(1.0);
        let mut faulted = Sharded::new(
            Boss::new(&idx, BossConfig::default()),
            &sh,
            leaves(&sh, 2, Some((0, plan))),
            ShardTiming::Logical,
        );
        let mut quiet = Sharded::new(
            Boss::new(&idx, BossConfig::default()),
            &sh,
            leaves(&sh, 2, None),
            ShardTiming::Logical,
        );
        for q in queries() {
            let a = faulted.search(&q, 10).unwrap();
            let b = quiet.search(&q, 10).unwrap();
            assert_eq!(a.hits, b.hits, "{q}");
        }
        // The degraded replica's symptoms are visible in telemetry and
        // attributed to (shard 0, replica 0) only.
        let stats = faulted.shard_stats();
        let bad = &stats[0];
        assert_eq!((bad.shard, bad.replica), (0, 0));
        assert!(bad.faults.total() > 0 || bad.blocks_skipped_fault > 0);
        for s in &stats[1..] {
            assert_eq!(
                s.faults.total(),
                0,
                "shard {} replica {}",
                s.shard,
                s.replica
            );
            assert_eq!(s.blocks_skipped_fault, 0);
        }
        // Routing learned to prefer the clean replica of shard 0.
        assert!(bad.selected < stats[1].selected + queries().len() as u64);
    }

    #[test]
    fn faulted_shard_without_replica_attributes_skips_to_that_shard() {
        let idx = corpus();
        let sh = ShardedIndex::split(&idx, 2).unwrap();
        let plan = FaultPlan::quiet(42).with_uncorrectable_rate(1.0);
        let mut multi = Sharded::new(
            Boss::new(&idx, BossConfig::default()),
            &sh,
            leaves(&sh, 1, Some((1, plan))),
            ShardTiming::Logical,
        );
        for q in queries() {
            let _ = multi.search(&q, 10).unwrap();
        }
        let stats = multi.shard_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].faults.total(), 0);
        assert_eq!(stats[0].blocks_skipped_fault, 0);
        assert!(
            stats[1].faults.total() > 0,
            "shard 1 should show fault symptoms"
        );
        assert!(stats[1].blocks_skipped_fault > 0);
    }

    #[test]
    fn fork_and_reset_zero_the_telemetry() {
        let idx = corpus();
        let sh = ShardedIndex::split(&idx, 2).unwrap();
        let mut multi = Sharded::new(
            Boss::new(&idx, BossConfig::default()),
            &sh,
            leaves(&sh, 2, None),
            ShardTiming::Logical,
        );
        multi.search(&QueryExpr::term("beta"), 5).unwrap();
        assert!(multi.shard_stats().iter().any(|s| s.attempts > 0));
        let fork = multi.fork();
        assert!(fork.shard_stats().iter().all(|s| s.attempts == 0));
        assert_eq!(fork.n_shards(), 2);
        multi.reset_stats();
        assert!(multi
            .shard_stats()
            .iter()
            .all(|s| s.attempts == 0 && s.selected == 0 && s.faults.total() == 0));
        assert_eq!(multi.mem_stats().total_bytes(), 0);
    }
}
