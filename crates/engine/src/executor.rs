//! The generic, deterministic batch executor.
//!
//! Each worker thread owns a [`SearchEngine::fork`], so each worker also
//! owns its own decoded-block cache when one is configured. Hit/miss
//! patterns therefore vary with the thread count, but outcomes do not:
//! the cache is functional-speed only (see the crate-level determinism
//! contract).

use crate::SearchEngine;
use boss_core::{EvalCounts, QueryOutcome, SchedPolicy};
use boss_index::{Error, QueryExpr};
use boss_scm::MemStats;

/// Aggregate result of a batch run on any [`SearchEngine`].
#[derive(Debug, Clone)]
pub struct EngineBatch {
    /// Per-query outcomes, in submission order.
    pub outcomes: Vec<QueryOutcome>,
    /// Simulated makespan across the engine's lanes, in engine cycles.
    pub makespan_cycles: u64,
    /// Merged memory traffic.
    pub mem: MemStats,
    /// Merged evaluation counters.
    pub eval: EvalCounts,
}

impl EngineBatch {
    /// Batch wall-clock seconds at `clock_ghz`.
    pub fn seconds(&self, clock_ghz: f64) -> f64 {
        self.makespan_cycles as f64 / (clock_ghz * 1e9)
    }

    /// Batch throughput in queries/second at `clock_ghz`.
    pub fn throughput_qps(&self, clock_ghz: f64) -> f64 {
        if self.makespan_cycles == 0 {
            return 0.0;
        }
        self.outcomes.len() as f64 / self.seconds(clock_ghz)
    }
}

/// Runs query batches on a [`SearchEngine`], optionally sharded across
/// OS threads, with results **bit-identical at every thread count** (see
/// the crate-level determinism contract).
///
/// Wall-clock parallelism (how many OS threads execute queries) is
/// independent of the *simulated* parallelism (the engine's lanes): the
/// simulated schedule is always replayed serially from per-query cycle
/// counts after execution.
#[derive(Debug, Clone)]
pub struct BatchExecutor {
    threads: usize,
    policy: SchedPolicy,
}

impl Default for BatchExecutor {
    fn default() -> Self {
        Self::new()
    }
}

impl BatchExecutor {
    /// An executor using every available CPU, FIFO scheduling.
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        BatchExecutor {
            threads,
            policy: SchedPolicy::Fifo,
        }
    }

    /// An executor pinned to `threads` OS threads (0 is clamped to 1).
    pub fn with_threads(threads: usize) -> Self {
        BatchExecutor {
            threads: threads.max(1),
            policy: SchedPolicy::Fifo,
        }
    }

    /// Replaces the simulated scheduling policy.
    #[must_use]
    pub fn with_policy(mut self, policy: SchedPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// OS threads this executor shards batches across.
    pub fn thread_count(&self) -> usize {
        self.threads
    }

    /// The simulated scheduling policy.
    pub fn policy(&self) -> SchedPolicy {
        self.policy
    }

    /// Executes `queries` on forks of `engine` and replays the simulated
    /// lane schedule. Outcomes are returned in submission order; merged
    /// stats are summed in submission order.
    ///
    /// `engine` itself is only used for forking and the scheduling hooks
    /// — its accumulators are left untouched, so a caller that wants
    /// running totals keeps using [`SearchEngine::search`] directly.
    ///
    /// # Errors
    ///
    /// The first (in submission order) query that fails to plan, with no
    /// partial results.
    pub fn run<E: SearchEngine + Send>(
        &self,
        engine: &E,
        queries: &[QueryExpr],
        k: usize,
    ) -> Result<EngineBatch, Error> {
        let n = queries.len();
        if n == 0 {
            return Ok(EngineBatch {
                outcomes: Vec::new(),
                makespan_cycles: 0,
                mem: MemStats::new(),
                eval: EvalCounts::default(),
            });
        }

        // Execute every query on a forked engine. Per-query execution is
        // pure, so sharding cannot change any outcome.
        let workers = self.threads.min(n);
        let mut results: Vec<Option<Result<QueryOutcome, Error>>> = (0..n).map(|_| None).collect();
        if workers <= 1 {
            let mut fork = engine.fork();
            for (slot, q) in results.iter_mut().zip(queries) {
                *slot = Some(fork.search(q, k));
            }
        } else {
            // Fork on the caller's thread (forks borrow the index, which
            // is Sync), then hand each worker one contiguous chunk.
            let forks: Vec<E> = (0..workers).map(|_| engine.fork()).collect();
            let chunk = n.div_ceil(workers);
            crossbeam::thread::scope(|s| {
                let mut rest_results = results.as_mut_slice();
                let mut rest_queries = queries;
                for mut fork in forks {
                    let take = chunk.min(rest_results.len());
                    let (slots, later_slots) = rest_results.split_at_mut(take);
                    let (qs, later_queries) = rest_queries.split_at(take);
                    rest_results = later_slots;
                    rest_queries = later_queries;
                    s.spawn(move || {
                        for (slot, q) in slots.iter_mut().zip(qs) {
                            *slot = Some(fork.search(q, k));
                        }
                    });
                }
            });
        }

        // Surface the first failure in submission order, like the
        // per-engine drivers did.
        let mut outcomes = Vec::with_capacity(n);
        for r in results {
            outcomes.push(r.expect("every query executed")?);
        }

        // Merge stats in submission order (the merges are commutative
        // u64 sums/maxima, so this matches any execution order bit for
        // bit).
        let mut mem = MemStats::new();
        let mut eval = EvalCounts::default();
        for o in &outcomes {
            mem.merge(&o.mem);
            eval.merge(&o.eval);
        }

        // Replay the simulated schedule serially: greedy earliest-free
        // lane(s) per query in policy order, using the per-query cycle
        // counts. Never observes OS-thread interleaving.
        let mut order: Vec<usize> = (0..n).collect();
        if self.policy == SchedPolicy::Sjf {
            order.sort_by_key(|&i| engine.work_estimate(&queries[i]));
        }
        let lanes = engine.lanes().max(1);
        let mut busy = vec![0u64; lanes];
        for &qi in &order {
            let gang = engine.gang_width(&queries[qi]).clamp(1, lanes);
            let mut idx: Vec<usize> = (0..lanes).collect();
            idx.sort_by_key(|&i| busy[i]);
            let chosen = &idx[..gang];
            let start = chosen
                .iter()
                .map(|&i| busy[i])
                .max()
                .expect("gang non-empty");
            let end = start + outcomes[qi].cycles;
            for &i in chosen {
                busy[i] = end;
            }
        }
        let core_limited = busy.into_iter().max().unwrap_or(0);
        let makespan_cycles = core_limited.max(engine.bandwidth_limit_cycles(&mem));
        Ok(EngineBatch {
            outcomes,
            makespan_cycles,
            mem,
            eval,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Boss;
    use boss_core::{BossConfig, BossDevice};
    use boss_index::{IndexBuilder, InvertedIndex};

    fn corpus() -> InvertedIndex {
        let docs: Vec<String> = (0u32..600)
            .map(|i| {
                let mut t = String::from("all");
                if i % 2 == 0 {
                    t.push_str(" even");
                }
                if i % 3 == 0 {
                    t.push_str(" three");
                }
                if i % 5 == 0 {
                    t.push_str(" five");
                }
                t
            })
            .collect();
        IndexBuilder::new()
            .add_documents(docs.iter().map(String::as_str))
            .build()
            .unwrap()
    }

    fn queries() -> Vec<QueryExpr> {
        (0..9)
            .map(|i| match i % 3 {
                0 => QueryExpr::term("even"),
                1 => QueryExpr::and([QueryExpr::term("three"), QueryExpr::term("five")]),
                _ => QueryExpr::or([QueryExpr::term("even"), QueryExpr::term("three")]),
            })
            .collect()
    }

    #[test]
    fn matches_the_native_boss_batch_driver() {
        // The executor must reproduce BossDevice::run_batch_with_policy
        // bit for bit — same schedule, same roofline, same merges.
        let idx = corpus();
        let qs = queries();
        for policy in [SchedPolicy::Fifo, SchedPolicy::Sjf] {
            let mut dev = BossDevice::new(&idx, BossConfig::with_cores(3));
            let native = dev.run_batch_with_policy(&qs, 10, policy).unwrap();
            let eng = Boss::new(&idx, BossConfig::with_cores(3));
            let ours = BatchExecutor::with_threads(1)
                .with_policy(policy)
                .run(&eng, &qs, 10)
                .unwrap();
            assert_eq!(ours.makespan_cycles, native.makespan_cycles, "{policy:?}");
            assert_eq!(ours.mem, native.mem, "{policy:?}");
            assert_eq!(ours.eval, native.eval, "{policy:?}");
            assert_eq!(ours.outcomes.len(), native.outcomes.len());
            for (a, b) in ours.outcomes.iter().zip(&native.outcomes) {
                assert_eq!(a.hits, b.hits, "{policy:?}");
                assert_eq!(a.cycles, b.cycles, "{policy:?}");
            }
        }
    }

    #[test]
    fn parallel_equals_serial() {
        let idx = corpus();
        let qs = queries();
        let eng = Boss::new(&idx, BossConfig::with_cores(2));
        let serial = BatchExecutor::with_threads(1).run(&eng, &qs, 10).unwrap();
        for threads in [2usize, 4, 7] {
            let par = BatchExecutor::with_threads(threads)
                .run(&eng, &qs, 10)
                .unwrap();
            assert_eq!(
                par.makespan_cycles, serial.makespan_cycles,
                "{threads} threads"
            );
            assert_eq!(par.mem, serial.mem, "{threads} threads");
            assert_eq!(par.eval, serial.eval, "{threads} threads");
            for (a, b) in par.outcomes.iter().zip(&serial.outcomes) {
                assert_eq!(a.hits, b.hits, "{threads} threads");
                assert_eq!(a.cycles, b.cycles, "{threads} threads");
            }
        }
    }

    #[test]
    fn bulk_score_invariant_across_threads() {
        // The bulk hot loop is wall-clock only: every observable of a
        // batch (per-query hits/cycles, merged stats, makespan) matches
        // the scalar engine at every thread count. Workers reuse their
        // fork's top-k heap and scoring scratch across queries, which
        // must not leak state between queries either.
        let idx = corpus();
        let qs = queries();
        let scalar = Boss::new(&idx, BossConfig::with_cores(2).with_bulk_score(false));
        let base = BatchExecutor::with_threads(1)
            .run(&scalar, &qs, 10)
            .unwrap();
        for threads in [1usize, 2, 4] {
            let bulk = Boss::new(&idx, BossConfig::with_cores(2).with_bulk_score(true));
            let b = BatchExecutor::with_threads(threads)
                .run(&bulk, &qs, 10)
                .unwrap();
            assert_eq!(b.makespan_cycles, base.makespan_cycles, "{threads} threads");
            assert_eq!(b.mem, base.mem, "{threads} threads");
            assert_eq!(b.eval, base.eval, "{threads} threads");
            for (a, s) in b.outcomes.iter().zip(&base.outcomes) {
                assert_eq!(a.hits, s.hits, "{threads} threads");
                assert_eq!(a.cycles, s.cycles, "{threads} threads");
            }
        }
    }

    #[test]
    fn error_reported_in_submission_order_without_partial_results() {
        let idx = corpus();
        let qs = vec![
            QueryExpr::term("even"),
            QueryExpr::term("missing"),
            QueryExpr::term("nope"),
        ];
        let eng = Boss::new(&idx, BossConfig::default());
        let err = BatchExecutor::with_threads(2)
            .run(&eng, &qs, 5)
            .unwrap_err();
        assert!(format!("{err}").contains("missing"), "got: {err}");
        // The caller's engine accumulators stay untouched.
        use crate::SearchEngine as _;
        assert_eq!(eng.mem_stats().total_bytes(), 0);
    }

    #[test]
    fn empty_batch_is_empty() {
        let idx = corpus();
        let eng = Boss::new(&idx, BossConfig::default());
        let b = BatchExecutor::with_threads(3).run(&eng, &[], 5).unwrap();
        assert_eq!(b.makespan_cycles, 0);
        assert!(b.outcomes.is_empty());
        assert_eq!(b.throughput_qps(1.0), 0.0);
    }
}
