//! Open-loop serving: bounded admission, deadlines, and graceful
//! overload degradation over any [`SearchEngine`].
//!
//! The [`BatchExecutor`](crate::BatchExecutor) answers "how fast can the
//! device drain a closed batch"; this module answers the production
//! question — what happens when queries *arrive on their own schedule*,
//! ready or not. It replays a deterministic arrival trace (see
//! `boss_workload::arrivals`) against a pool of simulated servers fed by
//! a **bounded admission queue**, with per-query deadlines, pluggable
//! scheduling, and an overload controller that flips the engines'
//! degrade levers as pressure builds.
//!
//! # Two-phase design: measure, then simulate
//!
//! A query's simulated service time is a pure function of the engine and
//! the query — it does not depend on what else is queued. The harness
//! exploits this by splitting serving into:
//!
//! 1. **Measure** ([`ServiceTable::measure`]) — every query is executed
//!    once per configured [`DegradeLevel`] through the deterministic
//!    [`BatchExecutor`](crate::BatchExecutor), recording its service
//!    cycles and a hash of its served top-k. OS-thread parallelism lives
//!    only here, and outcomes are bit-identical at every thread count by
//!    the executor's contract.
//! 2. **Simulate** ([`simulate`]) — a strictly serial, integer-cycle
//!    event replay: arrivals are admitted or rejected against the queue
//!    bound, dequeued per the scheduling policy, expired on dequeue when
//!    their deadline has already passed, and served at the degrade level
//!    the overload controller currently commands.
//!
//! Every admission, shed, expiry, and served-result decision is therefore
//! a function of `(arrival trace, service table, config)` alone — *never*
//! of OS-thread interleaving — which is what the CI determinism diffs
//! enforce at 1/2/4 workers and 1/4 shards.
//!
//! # Scheduling policies
//!
//! * [`ServePolicy::Fifo`] — arrival order;
//! * [`ServePolicy::Sjf`] — shortest measured normal-level service first
//!   (oracle SJF: the simulator knows true service times, making this the
//!   upper bound a real estimator approaches);
//! * [`ServePolicy::Edf`] — earliest absolute deadline first;
//! * [`ServePolicy::EdfShed`] — EDF plus *shed on overload*: a dequeued
//!   query predicted to finish past its deadline is dropped immediately
//!   instead of burning a server on work nobody will wait for.
//!
//! Every policy's ordering key is totalized by the arrival sequence
//! number, so ties dequeue deterministically.
//!
//! # Overload controller
//!
//! A three-state hysteresis machine (see [`OverloadConfig`]):
//!
//! ```text
//!   Normal --occupancy ≥ degrade--> Degraded --occupancy ≥ shed or
//!     ^                               |  ^      misses ≥ limit--> Shedding
//!     |   occupancy ≤ recover and     |  |                           |
//!     +---window quiet----------------+  +--occupancy ≤ recover------+
//! ```
//!
//! Its levers map to the stack's existing machinery: `Degraded` serves
//! at [`DegradeLevel::Pruned`] (a block-max pruned plan — same top-k,
//! fewer cycles; PR 6), `Shedding` additionally serves
//! [`DegradeLevel::Brownout`] (pruned *and* reduced k — cheaper still,
//! deliberately smaller results) and halves the admission bound. On
//! sharded engines the per-level engines are `Sharded`, so PR 5's
//! replica health routing rides along as a further lever under faults.

// The serving layer is the one module a production deployment would run
// continuously, so it is held to panic-freedom: CI promotes these to
// errors with `-D warnings`.
#![warn(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use crate::{BatchExecutor, SearchEngine};
use boss_index::{Error, QueryExpr, SearchHit};

/// Dequeue ordering of the admission queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ServePolicy {
    /// Arrival order.
    #[default]
    Fifo,
    /// Shortest measured (normal-level) service time first.
    Sjf,
    /// Earliest absolute deadline first.
    Edf,
    /// EDF, dropping dequeued queries predicted to miss their deadline.
    EdfShed,
}

/// All policies, in sweep order.
pub const ALL_SERVE_POLICIES: [ServePolicy; 4] = [
    ServePolicy::Fifo,
    ServePolicy::Sjf,
    ServePolicy::Edf,
    ServePolicy::EdfShed,
];

impl ServePolicy {
    /// The label used in bench output.
    pub fn label(self) -> &'static str {
        match self {
            ServePolicy::Fifo => "fifo",
            ServePolicy::Sjf => "sjf",
            ServePolicy::Edf => "edf",
            ServePolicy::EdfShed => "shed",
        }
    }
}

impl std::fmt::Display for ServePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for ServePolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "fifo" => Ok(ServePolicy::Fifo),
            "sjf" => Ok(ServePolicy::Sjf),
            "edf" => Ok(ServePolicy::Edf),
            "shed" | "edfshed" => Ok(ServePolicy::EdfShed),
            other => Err(format!(
                "unknown serve policy {other:?}: expected fifo, sjf, edf, or shed"
            )),
        }
    }
}

/// Service quality a query is executed at, the overload controller's
/// lever. Levels fall back downward when a table does not carry them
/// (a table measured without a pruned engine serves `Normal` always).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DegradeLevel {
    /// The configured plan at full k.
    Normal = 0,
    /// Block-max pruned plan: bit-identical top-k, fewer cycles.
    Pruned = 1,
    /// Pruned plan at reduced k: cheaper still, smaller results.
    Brownout = 2,
}

impl DegradeLevel {
    /// The label used in decision logs.
    pub fn label(self) -> &'static str {
        match self {
            DegradeLevel::Normal => "normal",
            DegradeLevel::Pruned => "pruned",
            DegradeLevel::Brownout => "brownout",
        }
    }
}

impl std::fmt::Display for DegradeLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Overload-controller thresholds. Occupancy is queue length over the
/// admission bound; misses are deadline expiries, sheds, and served-late
/// completions within the last [`OverloadConfig::miss_window`] dequeues.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadConfig {
    /// Enter `Degraded` at or above this queue occupancy.
    pub degrade_occupancy: f64,
    /// Enter `Shedding` at or above this queue occupancy.
    pub shed_occupancy: f64,
    /// Step one state down at or below this occupancy (hysteresis).
    pub recover_occupancy: f64,
    /// Dequeue-outcome window the miss rate is counted over.
    pub miss_window: usize,
    /// Misses within the window that force `Shedding`.
    pub miss_limit: usize,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            degrade_occupancy: 0.50,
            shed_occupancy: 0.85,
            recover_occupancy: 0.20,
            miss_window: 32,
            miss_limit: 8,
        }
    }
}

/// Overload controller state; maps one-to-one onto the
/// [`DegradeLevel`] queries are served at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum OverloadState {
    #[default]
    Normal,
    Degraded,
    Shedding,
}

/// The three-state hysteresis machine of the module docs. Deterministic:
/// its only inputs are queue occupancy and the windowed miss count, both
/// pure simulated quantities.
#[derive(Debug)]
struct OverloadController {
    config: OverloadConfig,
    state: OverloadState,
    /// Ring of recent dequeue outcomes (true = miss).
    window: std::collections::VecDeque<bool>,
    misses_in_window: usize,
    transitions: u64,
}

impl OverloadController {
    fn new(config: OverloadConfig) -> Self {
        OverloadController {
            config,
            state: OverloadState::Normal,
            window: std::collections::VecDeque::new(),
            misses_in_window: 0,
            transitions: 0,
        }
    }

    fn note_dequeue(&mut self, miss: bool) {
        self.window.push_back(miss);
        if miss {
            self.misses_in_window += 1;
        }
        while self.window.len() > self.config.miss_window.max(1) {
            if self.window.pop_front() == Some(true) {
                self.misses_in_window -= 1;
            }
        }
    }

    fn observe(&mut self, queue_len: usize, bound: usize) {
        let occ = queue_len as f64 / bound.max(1) as f64;
        let c = &self.config;
        let miss_hot = self.misses_in_window >= c.miss_limit.max(1);
        let next = match self.state {
            OverloadState::Normal => {
                if occ >= c.shed_occupancy || miss_hot {
                    OverloadState::Shedding
                } else if occ >= c.degrade_occupancy {
                    OverloadState::Degraded
                } else {
                    OverloadState::Normal
                }
            }
            OverloadState::Degraded => {
                if occ >= c.shed_occupancy || miss_hot {
                    OverloadState::Shedding
                } else if occ <= c.recover_occupancy && self.misses_in_window == 0 {
                    OverloadState::Normal
                } else {
                    OverloadState::Degraded
                }
            }
            OverloadState::Shedding => {
                if occ <= c.recover_occupancy && !miss_hot {
                    OverloadState::Degraded
                } else {
                    OverloadState::Shedding
                }
            }
        };
        if next != self.state {
            self.transitions += 1;
            self.state = next;
        }
    }

    fn level(&self) -> DegradeLevel {
        match self.state {
            OverloadState::Normal => DegradeLevel::Normal,
            OverloadState::Degraded => DegradeLevel::Pruned,
            OverloadState::Shedding => DegradeLevel::Brownout,
        }
    }

    /// Admission bound under the current state: `Shedding` halves it.
    fn effective_bound(&self, bound: usize) -> usize {
        match self.state {
            OverloadState::Shedding => (bound / 2).max(1),
            _ => bound,
        }
    }
}

/// Configuration of one serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingConfig {
    /// Simulated parallel servers draining the queue (an engine's lanes,
    /// typically). Clamped to ≥ 1.
    pub servers: usize,
    /// Admission queue bound; arrivals finding the queue at the bound are
    /// rejected. Clamped to ≥ 1 — there is no unbounded mode.
    pub queue_bound: usize,
    /// Sojourn budget in cycles: a query must *finish* within
    /// `arrival + deadline`. `None` disables deadlines (and makes EDF
    /// order degenerate to FIFO).
    pub deadline_cycles: Option<u64>,
    /// Dequeue ordering.
    pub policy: ServePolicy,
    /// Overload controller; `None` pins every query to
    /// [`DegradeLevel::Normal`] with a constant admission bound.
    pub overload: Option<OverloadConfig>,
}

impl ServingConfig {
    /// A FIFO, no-deadline, no-degrade configuration — the open-queue
    /// baseline.
    pub fn fifo(servers: usize, queue_bound: usize) -> Self {
        ServingConfig {
            servers,
            queue_bound,
            deadline_cycles: None,
            policy: ServePolicy::Fifo,
            overload: None,
        }
    }
}

/// Measured per-level service data of one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LevelService {
    cycles: u64,
    hits_hash: u64,
}

/// Per-query service measurements at every configured [`DegradeLevel`] —
/// the pure "physics" the serving simulation replays. Build one with
/// [`ServiceTable::measure`] (real engines) or
/// [`ServiceTable::from_cycles`] (synthetic, for property tests).
#[derive(Debug, Clone)]
pub struct ServiceTable {
    normal: Vec<LevelService>,
    pruned: Option<Vec<LevelService>>,
    brownout: Option<Vec<LevelService>>,
}

/// FNV-1a over the served hits: order-sensitive, so two runs agree only
/// when docIDs, ranks, and score bits all agree.
fn hash_hits(hits: &[SearchHit]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |b: u64| {
        for i in 0..8 {
            h ^= (b >> (8 * i)) & 0xff;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for hit in hits {
        eat(u64::from(hit.doc));
        eat(u64::from(hit.score.to_bits()));
    }
    h
}

fn measure_level<E: SearchEngine + Send>(
    engine: &E,
    queries: &[QueryExpr],
    k: usize,
    threads: usize,
) -> Result<Vec<LevelService>, Error> {
    let batch = BatchExecutor::with_threads(threads).run(engine, queries, k)?;
    Ok(batch
        .outcomes
        .iter()
        .map(|o| LevelService {
            cycles: o.cycles.max(1),
            hits_hash: hash_hits(&o.hits),
        })
        .collect())
}

impl ServiceTable {
    /// Measures `queries` on the per-level engines through the
    /// deterministic executor: `normal` at full `k`; `pruned` (when
    /// given) at full `k`; the brownout level reuses the pruned engine at
    /// `brownout_k`. `threads` changes wall-clock time only — the table
    /// is bit-identical at every thread count.
    ///
    /// # Errors
    ///
    /// The first query (in submission order) that fails to plan or
    /// decode on any of the engines.
    pub fn measure<E: SearchEngine + Send>(
        normal: &E,
        pruned: Option<&E>,
        queries: &[QueryExpr],
        k: usize,
        brownout_k: usize,
        threads: usize,
    ) -> Result<Self, Error> {
        let normal_svc = measure_level(normal, queries, k, threads)?;
        let pruned_svc = match pruned {
            Some(e) => Some(measure_level(e, queries, k, threads)?),
            None => None,
        };
        let brownout_svc = match pruned {
            Some(e) => Some(measure_level(e, queries, brownout_k.clamp(1, k), threads)?),
            None => None,
        };
        Ok(ServiceTable {
            normal: normal_svc,
            pruned: pruned_svc,
            brownout: brownout_svc,
        })
    }

    /// A synthetic table from raw per-level cycle counts (hashes are
    /// zero) — the property-test entry point. Zero cycles clamp to one;
    /// degraded vectors shorter than `normal` fall back per query.
    pub fn from_cycles(
        normal: Vec<u64>,
        pruned: Option<Vec<u64>>,
        brownout: Option<Vec<u64>>,
    ) -> Self {
        let lift = |v: Vec<u64>| {
            v.into_iter()
                .map(|c| LevelService {
                    cycles: c.max(1),
                    hits_hash: 0,
                })
                .collect::<Vec<_>>()
        };
        ServiceTable {
            normal: lift(normal),
            pruned: pruned.map(lift),
            brownout: brownout.map(lift),
        }
    }

    /// Queries in the table.
    pub fn len(&self) -> usize {
        self.normal.len()
    }

    /// True when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.normal.is_empty()
    }

    /// Mean normal-level service cycles (0.0 when empty) — the capacity
    /// anchor offered-load sweeps are scaled from.
    pub fn mean_normal_cycles(&self) -> f64 {
        if self.normal.is_empty() {
            return 0.0;
        }
        self.normal.iter().map(|s| s.cycles as f64).sum::<f64>() / self.normal.len() as f64
    }

    /// Resolves `level` for query `qi`, falling back toward `Normal`
    /// when a level was not measured.
    fn service(&self, level: DegradeLevel, qi: usize) -> (DegradeLevel, LevelService) {
        let pick = |v: &Option<Vec<LevelService>>| v.as_ref().and_then(|v| v.get(qi).copied());
        if level >= DegradeLevel::Brownout {
            if let Some(s) = pick(&self.brownout) {
                return (DegradeLevel::Brownout, s);
            }
        }
        if level >= DegradeLevel::Pruned {
            if let Some(s) = pick(&self.pruned) {
                return (DegradeLevel::Pruned, s);
            }
        }
        (
            DegradeLevel::Normal,
            self.normal.get(qi).copied().unwrap_or(LevelService {
                cycles: 1,
                hits_hash: 0,
            }),
        )
    }
}

/// What happened to one query — the drop-log entry the CI determinism
/// diffs compare bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Dispatched to a server and completed.
    Served {
        /// Quality level it was executed at.
        level: DegradeLevel,
        /// Dispatch cycle.
        start: u64,
        /// Completion cycle.
        finish: u64,
        /// Hash of the served top-k (see `ServiceTable`).
        hits_hash: u64,
    },
    /// Refused at admission: the queue was at its (effective) bound.
    Rejected,
    /// Dequeued after its deadline had already passed; no service time
    /// was spent on it.
    Expired {
        /// The dequeue cycle at which it was found dead.
        at: u64,
    },
    /// Dropped by [`ServePolicy::EdfShed`]: dequeued alive but predicted
    /// to finish past its deadline.
    Shed {
        /// The dequeue cycle at which it was shed.
        at: u64,
    },
}

impl Disposition {
    /// The label used in decision logs.
    pub fn label(&self) -> &'static str {
        match self {
            Disposition::Served { .. } => "served",
            Disposition::Rejected => "rejected",
            Disposition::Expired { .. } => "expired",
            Disposition::Shed { .. } => "shed",
        }
    }
}

/// One query's record in a [`ServingRun`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryRecord {
    /// Arrival cycle.
    pub arrival: u64,
    /// What became of it.
    pub disposition: Disposition,
}

/// Result of one serving simulation.
#[derive(Debug, Clone)]
pub struct ServingRun {
    /// Per-query records, in arrival order.
    pub records: Vec<QueryRecord>,
    /// Sojourn times (arrival → completion) of served queries, sorted.
    sojourns_sorted: Vec<u64>,
    /// Served queries per degrade level, indexed by level.
    pub served_by_level: [usize; 3],
    /// Queries refused at admission.
    pub rejected: usize,
    /// Queries expired on dequeue.
    pub expired: usize,
    /// Queries shed on dequeue.
    pub shed: usize,
    /// Served queries that completed after their deadline.
    pub served_late: usize,
    /// Deepest the admission queue ever got (≤ the configured bound).
    pub max_queue_depth: usize,
    /// Completion cycle of the last served query.
    pub makespan_cycles: u64,
    /// Overload-controller state changes.
    pub controller_transitions: u64,
}

impl ServingRun {
    /// Served queries (any level).
    pub fn served(&self) -> usize {
        self.sojourns_sorted.len()
    }

    /// Served queries that met their deadline — the goodput numerator.
    pub fn served_in_deadline(&self) -> usize {
        self.served() - self.served_late
    }

    /// Sojourn-time percentile over served queries, in cycles
    /// (0 when nothing was served). `p` in `[0, 1]`.
    pub fn sojourn_percentile(&self, p: f64) -> u64 {
        if self.sojourns_sorted.is_empty() {
            return 0;
        }
        let idx = ((self.sojourns_sorted.len() - 1) as f64 * p.clamp(0.0, 1.0)).round() as usize;
        self.sojourns_sorted[idx.min(self.sojourns_sorted.len() - 1)]
    }

    /// Mean sojourn time over served queries, cycles.
    pub fn mean_sojourn_cycles(&self) -> f64 {
        if self.sojourns_sorted.is_empty() {
            return 0.0;
        }
        self.sojourns_sorted.iter().map(|&c| c as f64).sum::<f64>()
            / self.sojourns_sorted.len() as f64
    }

    /// Goodput in queries/second at `clock_ghz`: served-within-deadline
    /// over the makespan.
    pub fn goodput_qps(&self, clock_ghz: f64) -> f64 {
        if self.makespan_cycles == 0 {
            return 0.0;
        }
        self.served_in_deadline() as f64 / (self.makespan_cycles as f64 / (clock_ghz * 1e9))
    }
}

/// A queued query awaiting dispatch.
#[derive(Debug, Clone, Copy)]
struct Queued {
    seq: usize,
    arrival: u64,
    abs_deadline: u64,
}

/// Dequeue-ordering key: policy-specific primary, arrival sequence as the
/// totalizing tie-break.
fn policy_key(policy: ServePolicy, q: &Queued, table: &ServiceTable) -> (u64, usize) {
    match policy {
        ServePolicy::Fifo => (0, q.seq),
        ServePolicy::Sjf => (table.service(DegradeLevel::Normal, q.seq).1.cycles, q.seq),
        ServePolicy::Edf | ServePolicy::EdfShed => (q.abs_deadline, q.seq),
    }
}

/// Replays `arrivals` against `table` under `config`. Strictly serial
/// and integer-exact: every decision is a pure function of the inputs.
///
/// `arrivals[i]` is the arrival cycle of query `i` of the table; the
/// trace must be non-decreasing (the generators produce strictly
/// increasing traces). When the lengths differ, the shorter prefix is
/// served.
pub fn simulate(config: &ServingConfig, arrivals: &[u64], table: &ServiceTable) -> ServingRun {
    let n = arrivals.len().min(table.len());
    let servers = config.servers.max(1);
    let bound = config.queue_bound.max(1);
    let mut controller = config.overload.clone().map(OverloadController::new);

    let mut server_free = vec![0u64; servers];
    let mut queue: Vec<Queued> = Vec::with_capacity(bound);
    let mut records: Vec<QueryRecord> = arrivals[..n]
        .iter()
        .map(|&arrival| QueryRecord {
            arrival,
            disposition: Disposition::Rejected,
        })
        .collect();
    let mut sojourns: Vec<u64> = Vec::with_capacity(n);
    let mut served_by_level = [0usize; 3];
    let (mut rejected, mut expired, mut shed, mut served_late) = (0, 0, 0, 0);
    let mut max_queue_depth = 0usize;
    let mut makespan = 0u64;

    // Dispatches queued queries onto servers for as long as a server
    // frees up at or before `horizon`. Between arrival events the queue
    // only drains, so the earliest-free server is always eligible first.
    macro_rules! drain {
        ($horizon:expr) => {
            while !queue.is_empty() {
                // Earliest-free server; index breaks ties for a stable,
                // deterministic assignment.
                let (si, free) = server_free
                    .iter()
                    .copied()
                    .enumerate()
                    .min_by_key(|&(i, f)| (f, i))
                    .unwrap_or((0, 0));
                if free > $horizon {
                    break;
                }
                // Pick the next query per policy; the seq tie-break makes
                // the order total, so ties dequeue deterministically.
                let pick = queue
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, q)| policy_key(config.policy, q, table))
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                let q = queue.remove(pick);
                let start = free.max(q.arrival);
                // On-dequeue expiry: a query already past its deadline is
                // dropped without burning any service time on it.
                if start >= q.abs_deadline {
                    records[q.seq].disposition = Disposition::Expired { at: start };
                    expired += 1;
                    if let Some(c) = controller.as_mut() {
                        c.note_dequeue(true);
                        c.observe(queue.len(), bound);
                    }
                    continue;
                }
                let want = controller
                    .as_ref()
                    .map_or(DegradeLevel::Normal, |c| c.level());
                let (level, svc) = table.service(want, q.seq);
                let finish = start + svc.cycles;
                // Shed-on-overload: don't start work that is already
                // predicted to finish past its deadline.
                if config.policy == ServePolicy::EdfShed && finish > q.abs_deadline {
                    records[q.seq].disposition = Disposition::Shed { at: start };
                    shed += 1;
                    if let Some(c) = controller.as_mut() {
                        c.note_dequeue(true);
                        c.observe(queue.len(), bound);
                    }
                    continue;
                }
                server_free[si] = finish;
                makespan = makespan.max(finish);
                let late = finish > q.abs_deadline;
                if late {
                    served_late += 1;
                }
                served_by_level[level as usize] += 1;
                sojourns.push(finish - q.arrival);
                records[q.seq].disposition = Disposition::Served {
                    level,
                    start,
                    finish,
                    hits_hash: svc.hits_hash,
                };
                if let Some(c) = controller.as_mut() {
                    c.note_dequeue(late);
                    c.observe(queue.len(), bound);
                }
            }
        };
    }

    for (seq, &arrival) in arrivals.iter().enumerate().take(n) {
        drain!(arrival);
        if let Some(c) = controller.as_mut() {
            c.observe(queue.len(), bound);
        }
        let bound_now = controller
            .as_ref()
            .map_or(bound, |c| c.effective_bound(bound));
        if queue.len() >= bound_now {
            // records[seq] already reads Rejected.
            rejected += 1;
            continue;
        }
        let abs_deadline = config
            .deadline_cycles
            .map_or(u64::MAX, |d| arrival.saturating_add(d));
        queue.push(Queued {
            seq,
            arrival,
            abs_deadline,
        });
        max_queue_depth = max_queue_depth.max(queue.len());
    }
    drain!(u64::MAX);

    sojourns.sort_unstable();
    ServingRun {
        records,
        sojourns_sorted: sojourns,
        served_by_level,
        rejected,
        expired,
        shed,
        served_late,
        max_queue_depth,
        makespan_cycles: makespan,
        controller_transitions: controller.map_or(0, |c| c.transitions),
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

    use super::*;
    use crate::Boss;
    use boss_core::{BossConfig, QueryAlgorithm};
    use boss_index::{IndexBuilder, InvertedIndex};

    fn corpus() -> InvertedIndex {
        let docs: Vec<String> = (0u32..500)
            .map(|i| {
                let mut t = String::from("base");
                if i % 2 == 0 {
                    t.push_str(" even even");
                }
                if i % 3 == 0 {
                    t.push_str(" three");
                }
                if i % 7 == 0 {
                    t.push_str(" seven");
                }
                t
            })
            .collect();
        IndexBuilder::new()
            .add_documents(docs.iter().map(String::as_str))
            .build()
            .unwrap()
    }

    fn queries() -> Vec<QueryExpr> {
        (0..24)
            .map(|i| match i % 3 {
                0 => QueryExpr::term("even"),
                1 => QueryExpr::or([QueryExpr::term("three"), QueryExpr::term("seven")]),
                _ => QueryExpr::and([QueryExpr::term("even"), QueryExpr::term("three")]),
            })
            .collect()
    }

    fn uniform_arrivals(n: usize, gap: u64) -> Vec<u64> {
        (1..=n as u64).map(|i| i * gap).collect()
    }

    #[test]
    fn service_table_is_thread_invariant() {
        let idx = corpus();
        let qs = queries();
        let normal = Boss::new(&idx, BossConfig::with_cores(2));
        let pruned = Boss::new(
            &idx,
            BossConfig::with_cores(2).with_algorithm(QueryAlgorithm::BlockMaxMaxScore),
        );
        let base = ServiceTable::measure(&normal, Some(&pruned), &qs, 10, 3, 1).unwrap();
        for threads in [2usize, 4] {
            let t = ServiceTable::measure(&normal, Some(&pruned), &qs, 10, 3, threads).unwrap();
            assert_eq!(t.normal, base.normal, "{threads} threads");
            assert_eq!(t.pruned, base.pruned, "{threads} threads");
            assert_eq!(t.brownout, base.brownout, "{threads} threads");
        }
    }

    #[test]
    fn light_load_serves_everything_normally() {
        let table = ServiceTable::from_cycles(vec![100; 16], None, None);
        let config = ServingConfig::fifo(4, 8);
        let run = simulate(&config, &uniform_arrivals(16, 10_000), &table);
        assert_eq!(run.served(), 16);
        assert_eq!(run.rejected + run.expired + run.shed, 0);
        assert_eq!(run.served_by_level, [16, 0, 0]);
        // No queueing: sojourn == service.
        assert_eq!(run.sojourn_percentile(1.0), 100);
        assert_eq!(run.max_queue_depth, 1);
    }

    #[test]
    fn overload_rejects_but_never_exceeds_the_bound() {
        let table = ServiceTable::from_cycles(vec![1000; 200], None, None);
        let config = ServingConfig::fifo(1, 4);
        let run = simulate(&config, &uniform_arrivals(200, 10), &table);
        assert!(run.rejected > 100, "rejected {}", run.rejected);
        assert!(run.max_queue_depth <= 4);
        assert_eq!(run.served() + run.rejected, 200);
    }

    #[test]
    fn expired_queries_are_never_served_and_burn_no_service() {
        let table = ServiceTable::from_cycles(vec![1000; 50], None, None);
        let config = ServingConfig {
            servers: 1,
            queue_bound: 64,
            deadline_cycles: Some(1500),
            policy: ServePolicy::Edf,
            overload: None,
        };
        let run = simulate(&config, &uniform_arrivals(50, 100), &table);
        assert!(run.expired > 0);
        for r in &run.records {
            if let Disposition::Served { start, finish, .. } = r.disposition {
                assert!(start < r.arrival + 1500, "started past deadline");
                assert_eq!(finish - start, 1000, "full service charged");
            }
        }
        // With on-dequeue expiry only, some served queries may still
        // finish late; the shed policy removes those too.
        let shed_run = simulate(
            &ServingConfig {
                policy: ServePolicy::EdfShed,
                ..config
            },
            &uniform_arrivals(50, 100),
            &table,
        );
        assert_eq!(shed_run.served_late, 0);
        for r in &shed_run.records {
            if let Disposition::Served { finish, .. } = r.disposition {
                assert!(finish <= r.arrival + 1500);
            }
        }
    }

    #[test]
    fn edf_ties_dequeue_in_arrival_order() {
        // Same deadline everywhere: EDF's tie-break must reproduce FIFO.
        let cycles: Vec<u64> = (0..40).map(|i| 100 + (i % 7) * 50).collect();
        let table = ServiceTable::from_cycles(cycles, None, None);
        let arrivals: Vec<u64> = vec![10; 40]
            .iter()
            .scan(0u64, |t, &g| {
                *t += g;
                Some(*t)
            })
            .collect();
        let fifo = simulate(
            &ServingConfig {
                deadline_cycles: None,
                ..ServingConfig::fifo(2, 64)
            },
            &arrivals,
            &table,
        );
        let edf = simulate(
            &ServingConfig {
                deadline_cycles: None,
                policy: ServePolicy::Edf,
                ..ServingConfig::fifo(2, 64)
            },
            &arrivals,
            &table,
        );
        assert_eq!(fifo.records, edf.records);
    }

    #[test]
    fn degrade_controller_switches_levels_and_recovers() {
        // Normal service 10× slower than arrivals; pruned 10× cheaper.
        let n = 300;
        let table = ServiceTable::from_cycles(vec![1000; n], Some(vec![100; n]), Some(vec![50; n]));
        let config = ServingConfig {
            servers: 1,
            queue_bound: 32,
            deadline_cycles: Some(50_000),
            policy: ServePolicy::Edf,
            overload: Some(OverloadConfig::default()),
        };
        let run = simulate(&config, &uniform_arrivals(n, 150), &table);
        assert!(run.controller_transitions > 0, "controller never moved");
        let degraded = run.served_by_level[1] + run.served_by_level[2];
        assert!(degraded > 0, "no degraded service under overload");
        assert!(
            run.served_by_level[0] > 0,
            "controller never recovered to normal"
        );
        // Degradation keeps the system ahead of the load: nothing is
        // rejected once pruned service outruns the arrival rate.
        assert!(run.served() > n / 2);
    }

    #[test]
    fn simulate_is_deterministic() {
        let cycles: Vec<u64> = (0..128).map(|i| 50 + (i * 37) % 500).collect();
        let table = ServiceTable::from_cycles(cycles.clone(), Some(cycles), None);
        let arrivals = uniform_arrivals(128, 90);
        let config = ServingConfig {
            servers: 3,
            queue_bound: 16,
            deadline_cycles: Some(2_000),
            policy: ServePolicy::EdfShed,
            overload: Some(OverloadConfig::default()),
        };
        let a = simulate(&config, &arrivals, &table);
        let b = simulate(&config, &arrivals, &table);
        assert_eq!(a.records, b.records);
        assert_eq!(a.sojourns_sorted, b.sojourns_sorted);
    }

    #[test]
    fn end_to_end_run_is_bit_identical_across_worker_counts() {
        let idx = corpus();
        let qs = queries();
        let normal = Boss::new(&idx, BossConfig::with_cores(4));
        let pruned = Boss::new(
            &idx,
            BossConfig::with_cores(4).with_algorithm(QueryAlgorithm::BlockMaxMaxScore),
        );
        let config = ServingConfig {
            servers: 4,
            queue_bound: 8,
            deadline_cycles: Some(200_000),
            policy: ServePolicy::EdfShed,
            overload: Some(OverloadConfig::default()),
        };
        let mk = |threads| {
            let table = ServiceTable::measure(&normal, Some(&pruned), &qs, 10, 3, threads).unwrap();
            let mean = table.mean_normal_cycles();
            let arrivals = boss_workload::arrivals::generate(
                boss_workload::arrivals::ArrivalKind::Poisson,
                qs.len(),
                mean / 6.0,
                7,
            );
            simulate(&config, &arrivals, &table)
        };
        let base = mk(1);
        for threads in [2usize, 4] {
            let run = mk(threads);
            assert_eq!(base.records, run.records, "{threads} workers");
        }
    }

    #[test]
    fn brownout_falls_back_when_unmeasured() {
        let table = ServiceTable::from_cycles(vec![100; 4], Some(vec![40; 4]), None);
        let (level, svc) = table.service(DegradeLevel::Brownout, 2);
        assert_eq!(level, DegradeLevel::Pruned);
        assert_eq!(svc.cycles, 40);
        let bare = ServiceTable::from_cycles(vec![100; 4], None, None);
        let (level, svc) = bare.service(DegradeLevel::Brownout, 0);
        assert_eq!(level, DegradeLevel::Normal);
        assert_eq!(svc.cycles, 100);
    }

    #[test]
    fn policy_and_kind_labels_parse() {
        for p in ALL_SERVE_POLICIES {
            assert_eq!(p.label().parse::<ServePolicy>().unwrap(), p);
        }
        assert!("lifo".parse::<ServePolicy>().is_err());
    }
}
