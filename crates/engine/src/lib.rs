//! Unified engine layer over the three simulated search systems.
//!
//! The bench harness used to carry one hand-written batch driver per
//! system (BOSS, IIU, Lucene-like), each re-implementing scheduling,
//! stat merging, and roofline math with slightly different constants.
//! This crate factors that into:
//!
//! * [`SearchEngine`] — the per-query contract every engine satisfies
//!   (execute one query, expose label/clock/stat accumulators), plus the
//!   small set of per-engine scheduling hooks (gang width, SJF work
//!   estimate, bandwidth roofline) that the batch driver needs;
//! * [`BatchExecutor`] — one generic batch driver that executes a query
//!   set on any engine, optionally sharded across OS threads, and
//!   replays the simulated core/thread schedule serially so results are
//!   **bit-identical at every thread count**.
//!
//! # Determinism contract
//!
//! Every engine's per-query execution is pure: given the same index,
//! configuration, query, and `k`, it returns the same [`QueryOutcome`]
//! (hits, cycles, traffic, counters) regardless of which OS thread runs
//! it or what ran before it. The executor relies on this:
//!
//! 1. queries are sharded into contiguous chunks, one forked engine per
//!    worker thread, so workers share nothing mutable;
//! 2. outcomes are scattered back to submission order;
//! 3. the simulated schedule (greedy earliest-free lane, gang widths,
//!    bandwidth roofline) is then replayed serially from per-query cycle
//!    counts — it never observes wall-clock thread interleaving;
//! 4. merged [`MemStats`]/[`EvalCounts`] are summed in submission order.
//!
//! Anything that would break this contract (a cache shared across
//! queries, an RNG in an engine, order-dependent accumulation) must not
//! be added to an engine without revisiting the executor.
//!
//! The decoded-block cache (`block_cache_blocks` in each engine config)
//! is the one deliberate exception, and it is safe because it is
//! *functional-speed only*: a hit skips the host-side software decode
//! but every simulated charge (block reads, decompression cycles,
//! counters) is made identically on hits and misses, so a
//! [`QueryOutcome`] never depends on cache state. Each forked worker
//! builds its own cache, and hit/miss counters are surfaced only through
//! [`SearchEngine::block_cache_stats`] — never through the outcome — so
//! results stay bit-identical at every thread count even though hit
//! patterns depend on how queries are chunked.
//!
//! The shard layer ([`Sharded`]) extends the contract to shard counts:
//! its routing telemetry (attempt/selection tallies per replica) follows
//! the same out-of-band rule as the block cache, and its
//! [`ShardTiming::Logical`] mode sources every [`QueryOutcome`]
//! observable except the hits from the canonical single-device engine,
//! so batch results are bit-identical at every *shard* count too.

mod engines;
mod executor;
mod serving;
mod sharded;

pub use engines::{Boss, Iiu, Lucene};
pub use executor::{BatchExecutor, EngineBatch};
pub use serving::{
    simulate, DegradeLevel, Disposition, OverloadConfig, QueryRecord, ServePolicy, ServiceTable,
    ServingConfig, ServingRun, ALL_SERVE_POLICIES,
};
pub use sharded::{ShardReplicaStats, ShardTiming, Sharded};

// Engine-level result vocabulary: the per-query outcome and the two stat
// accumulators are shared by all engines, so the simulator crates' types
// are re-exported as this layer's own. `Error` covers planning failures
// (unknown term, oversized query), which are also common to all engines.
pub use boss_core::{BlockCacheStats, EvalCounts, QueryOutcome, SchedPolicy};
pub use boss_index::Error;
pub use boss_scm::MemStats;

use boss_index::QueryExpr;

/// Loads a SPIMI segment directory (written by
/// [`boss_index::SpimiBuilder`]) and merges it into the one owned
/// [`boss_index::InvertedIndex`] every engine in this crate borrows.
/// The merge re-encodes against global statistics, so an engine opened
/// this way is bit-identical — hits, cycles, traffic — to the same
/// engine over an in-memory build of the same corpus.
///
/// # Errors
///
/// Propagates manifest/segment validation and I/O failures
/// ([`boss_index::io::IoError`]); every corrupt-file condition is a
/// typed error, never a panic.
pub fn open_segments(
    dir: impl AsRef<std::path::Path>,
) -> Result<boss_index::InvertedIndex, boss_index::io::IoError> {
    boss_index::SegmentSet::open_dir(dir)?.merge()
}

/// One simulated search system bound to an index: BOSS, IIU, or the
/// Lucene-like software baseline.
///
/// Implementations accumulate the memory traffic and evaluation counters
/// of every successful [`search`](SearchEngine::search) into
/// [`mem_stats`](SearchEngine::mem_stats) /
/// [`eval_counts`](SearchEngine::eval_counts) until
/// [`reset_stats`](SearchEngine::reset_stats) clears them.
pub trait SearchEngine {
    /// Display label, e.g. `BOSSx8`, `IIUx8`, `Lucene x8`.
    fn label(&self) -> String;

    /// Clock of the simulated lanes, GHz (cycles ↔ seconds conversion).
    fn clock_ghz(&self) -> f64;

    /// Parallel lanes the batch scheduler fills: cores or threads.
    fn lanes(&self) -> usize;

    /// Executes one query, merging its stats into the accumulators.
    ///
    /// # Errors
    ///
    /// Planning errors ([`Error::UnknownTerm`], [`Error::InvalidQuery`]),
    /// plus decode/fault errors ([`Error::Codec`],
    /// [`Error::CorruptMetadata`], [`Error::ReadFault`]) when the engine
    /// runs over corrupted data or
    /// an SCM fault plan under the `FailQuery` degradation policy. Under
    /// `SkipBlock` the query completes instead and the dropped blocks are
    /// counted in [`EvalCounts::blocks_skipped_fault`]. The accumulators
    /// are left untouched on error.
    fn search(&mut self, expr: &QueryExpr, k: usize) -> Result<QueryOutcome, Error>;

    /// Executes one query with the top-k score floor pre-seeded at
    /// `floor`, merging stats like [`search`](SearchEngine::search).
    ///
    /// The floor is a pruning hint with a drop contract: the engine may
    /// discard hits scoring at or below `floor` (and skip the work of
    /// producing them), but must keep every hit strictly above it. The
    /// [`Sharded`] coordinator uses this to share the running global
    /// threshold of its scatter-gather merge with later shards — a later
    /// shard's tie at the running k-th score loses the merge to the
    /// earlier shard's smaller-docID incumbents (shards are contiguous
    /// ascending document ranges), so dropping it never changes the
    /// merged top-k. The default ignores the floor and runs a plain
    /// [`search`](SearchEngine::search): always correct, never faster.
    ///
    /// # Errors
    ///
    /// As [`search`](SearchEngine::search).
    fn search_seeded(
        &mut self,
        expr: &QueryExpr,
        k: usize,
        _floor: f32,
    ) -> Result<QueryOutcome, Error> {
        self.search(expr, k)
    }

    /// Memory traffic accumulated since the last reset.
    fn mem_stats(&self) -> &MemStats;

    /// Evaluation counters accumulated since the last reset.
    fn eval_counts(&self) -> &EvalCounts;

    /// Clears both accumulators.
    fn reset_stats(&mut self);

    /// A fresh engine over the same index and configuration with zeroed
    /// accumulators — what each executor worker thread owns.
    fn fork(&self) -> Self
    where
        Self: Sized;

    /// Lanes this query occupies simultaneously (BOSS gangs cores for
    /// wide queries; everything else runs on one lane). Unplannable
    /// queries report 1 — the error surfaces at execution instead.
    fn gang_width(&self, _expr: &QueryExpr) -> usize {
        1
    }

    /// Scheduling work estimate for shortest-job-first ordering. The
    /// default (0) makes SJF degenerate to FIFO.
    fn work_estimate(&self, _expr: &QueryExpr) -> u64 {
        0
    }

    /// Bandwidth-roofline bound on the batch makespan: the memory node
    /// serves at most `channels` channel-cycles per 1 GHz cycle, so a
    /// batch cannot finish faster than its aggregate occupancy allows.
    fn bandwidth_limit_cycles(&self, mem: &MemStats) -> u64;

    /// Achieved batch bandwidth over the makespan, GB/s. Accelerators
    /// report *effective* (device-granule) traffic; the Lucene engine
    /// overrides this with logical bytes, as the paper plots host-side.
    fn bandwidth_gbps(&self, mem: &MemStats, makespan_cycles: u64) -> f64 {
        mem.achieved_gbps(makespan_cycles)
    }

    /// Hit/miss/eviction counters of the decoded-block cache, if the
    /// engine has one enabled. Deliberately not part of
    /// [`QueryOutcome`]: hit patterns depend on query chunking across
    /// workers, while outcomes must stay bit-identical at every thread
    /// count.
    fn block_cache_stats(&self) -> Option<BlockCacheStats> {
        None
    }
}
