//! Property tests over *corrupted* encoded inputs: every codec's fast
//! decode path, the word-level unpack kernels, and the netlist
//! interpreter must agree with their reference oracles on accept/reject
//! — and must never panic or over-reserve — for arbitrary byte soup.
//!
//! The deterministic CI harness (`boss-bench`'s `corruption_harness`)
//! covers the same surfaces at higher volume with curated mutation
//! categories; these tests keep the contract pinned from the test suite
//! with fully random inputs.

use boss_compress::{codec_for, unpack, BlockInfo, Scheme, ALL_SCHEMES, MAX_BLOCK_VALUES};
use boss_decomp::DecompEngine;
use proptest::prelude::*;

/// Arbitrary (data, descriptor) pairs: sometimes pure garbage, so decoders
/// see inputs no encoder would emit.
fn raw_block() -> impl Strategy<Value = (Vec<u8>, BlockInfo)> {
    (
        prop::collection::vec(any::<u8>(), 0..300),
        any::<u16>(),
        any::<u8>(),
        any::<u16>(),
    )
        .prop_map(|(data, count, bit_width, exception_offset)| {
            (
                data,
                BlockInfo {
                    // Bias toward plausible counts so decoders get past the
                    // count guard often enough to exercise deep paths.
                    count: count % 200,
                    bit_width,
                    exception_offset,
                },
            )
        })
}

/// A valid encoded block with one random byte corrupted.
fn corrupted_block(scheme: Scheme) -> impl Strategy<Value = (Vec<u8>, BlockInfo)> {
    (
        prop::collection::vec(0u32..(1 << 20), 1..129),
        any::<u16>(),
        any::<u8>(),
    )
        .prop_map(move |(values, pos, xor)| {
            let mut data = Vec::new();
            let info = codec_for(scheme)
                .encode(&values, &mut data)
                .expect("20-bit values encode under every stock scheme");
            if !data.is_empty() && xor != 0 {
                let i = pos as usize % data.len();
                data[i] ^= xor;
            }
            (data, info)
        })
}

fn assert_paths_agree(scheme: Scheme, data: &[u8], info: &BlockInfo) -> Result<(), TestCaseError> {
    let codec = codec_for(scheme);
    let mut fast = Vec::new();
    let mut reference = Vec::new();
    let mut fused = Vec::new();
    let fast_res = codec.decode(data, info, &mut fast);
    let ref_res = codec.decode_reference(data, info, &mut reference);
    let fused_res = codec.decode_d1(data, info, 3, &mut fused);
    prop_assert_eq!(
        fast_res.is_ok(),
        ref_res.is_ok(),
        "{} fast/reference accept disagreement",
        scheme
    );
    prop_assert_eq!(
        fast_res.is_ok(),
        fused_res.is_ok(),
        "{} decode/decode_d1 accept disagreement",
        scheme
    );
    if fast_res.is_ok() {
        prop_assert_eq!(&fast, &reference, "{} value disagreement", scheme);
    }
    prop_assert!(fast.capacity() <= 2 * MAX_BLOCK_VALUES);
    prop_assert!(reference.capacity() <= 2 * MAX_BLOCK_VALUES);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn codecs_reject_or_decode_garbage_identically(
        (data, info) in raw_block(),
    ) {
        for &scheme in &ALL_SCHEMES {
            assert_paths_agree(scheme, &data, &info)?;
        }
    }

    #[test]
    fn bp_single_corrupt_byte(b in corrupted_block(Scheme::Bp)) {
        assert_paths_agree(Scheme::Bp, &b.0, &b.1)?;
    }

    #[test]
    fn vb_single_corrupt_byte(b in corrupted_block(Scheme::Vb)) {
        assert_paths_agree(Scheme::Vb, &b.0, &b.1)?;
    }

    #[test]
    fn optpfd_single_corrupt_byte(b in corrupted_block(Scheme::OptPfd)) {
        assert_paths_agree(Scheme::OptPfd, &b.0, &b.1)?;
    }

    #[test]
    fn s16_single_corrupt_byte(b in corrupted_block(Scheme::S16)) {
        assert_paths_agree(Scheme::S16, &b.0, &b.1)?;
    }

    #[test]
    fn s8b_single_corrupt_byte(b in corrupted_block(Scheme::S8b)) {
        assert_paths_agree(Scheme::S8b, &b.0, &b.1)?;
    }

    #[test]
    fn unpack_kernels_agree_with_reference(
        data in prop::collection::vec(any::<u8>(), 0..200),
        count in 0usize..200,
        width in 0u32..40,
        base in any::<u32>(),
    ) {
        let mut fast = Vec::new();
        let mut reference = Vec::new();
        let fast_res = unpack::unpack(&data, count, width, &mut fast);
        let ref_res = unpack::unpack_reference(&data, count, width, &mut reference);
        prop_assert_eq!(fast_res.is_ok(), ref_res.is_ok(), "unpack accept disagreement");
        if fast_res.is_ok() {
            prop_assert_eq!(&fast, &reference);
        }

        let mut fast_d1 = Vec::new();
        let mut ref_d1 = Vec::new();
        let fast_res = unpack::unpack_d1(&data, count, width, base, &mut fast_d1);
        let ref_res = unpack::unpack_d1_reference(&data, count, width, base, &mut ref_d1);
        prop_assert_eq!(fast_res.is_ok(), ref_res.is_ok(), "unpack_d1 accept disagreement");
        if fast_res.is_ok() {
            prop_assert_eq!(&fast_d1, &ref_d1);
        }
    }

    #[test]
    fn netlist_interpreter_never_panics_on_garbage(
        (data, info) in raw_block(),
    ) {
        for &scheme in &ALL_SCHEMES {
            let engine = DecompEngine::for_scheme(scheme).expect("stock netlist parses");
            let res = engine.decode(&data, &info);
            if let Ok(out) = &res {
                prop_assert_eq!(out.values.len(), info.count as usize, "{}", scheme);
                prop_assert!(out.values.capacity() <= 2 * MAX_BLOCK_VALUES);
            }
            // Typed rejection is the other legal outcome — and whichever
            // it is, the interpreter oracle must reach the same one.
            let oracle = engine.clone().with_interpreter(true).decode(&data, &info);
            prop_assert_eq!(res, oracle, "{} compiled/interpreted disagreement", scheme);
        }
    }

    #[test]
    fn netlist_accepts_iff_bit_correct_on_clean_blocks(
        values in prop::collection::vec(0u32..(1 << 20), 1..129),
    ) {
        for &scheme in &ALL_SCHEMES {
            let mut data = Vec::new();
            let info = codec_for(scheme).encode(&values, &mut data).expect("encodes");
            let engine = DecompEngine::for_scheme(scheme).expect("stock netlist parses");
            let out = engine.decode(&data, &info).expect("clean block decodes");
            prop_assert_eq!(&out.values, &values, "{} netlist mismatch", scheme);
        }
    }
}
