//! Cross-crate property tests: index construction, sharding, serialization
//! and the accelerator agree under randomized inputs.

use boss_core::{BossConfig, BossDevice};
use boss_index::shard::ShardedIndex;
use boss_index::{IndexBuilder, InvertedIndex, PostingList, QueryExpr};
use proptest::prelude::*;

/// Random posting columns: strictly increasing docs, tf >= 1.
fn posting_columns(max_doc: u32) -> impl Strategy<Value = (Vec<u32>, Vec<u32>)> {
    prop::collection::btree_set(0..max_doc, 1..200).prop_flat_map(|docs| {
        let docs: Vec<u32> = docs.into_iter().collect();
        let n = docs.len();
        (Just(docs), prop::collection::vec(1u32..50, n))
    })
}

fn build(lists: &[(String, Vec<u32>, Vec<u32>)], n_docs: u32) -> InvertedIndex {
    let mut b = IndexBuilder::new().doc_lens(vec![60; n_docs as usize]);
    for (name, docs, tfs) in lists {
        let pl = PostingList::from_columns(docs.clone(), tfs.clone()).expect("valid columns");
        b = b.add_posting_list(name, &pl);
    }
    b.build().expect("index builds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn encoded_lists_roundtrip_through_index(
        (docs, tfs) in posting_columns(100_000),
    ) {
        let index = build(&[("t".into(), docs.clone(), tfs.clone())], 100_000);
        let id = index.term_id("t").unwrap();
        let (d, f) = index.list(id).decode_all().unwrap();
        prop_assert_eq!(d, docs);
        prop_assert_eq!(f, tfs);
    }

    #[test]
    fn sharding_conserves_postings(
        (docs, tfs) in posting_columns(5_000),
        n_shards in 1u32..7,
    ) {
        let index = build(&[("t".into(), docs.clone(), tfs.clone())], 5_000);
        let sharded = ShardedIndex::split(&index, n_shards).unwrap();
        let mut reassembled: Vec<(u32, u32)> = Vec::new();
        for (si, shard) in sharded.shards().iter().enumerate() {
            if let Ok(id) = shard.term_id("t") {
                let (d, f) = shard.list(id).decode_all().unwrap();
                reassembled.extend(d.into_iter().zip(f).map(|(doc, tf)| (sharded.global_doc(si, doc), tf)));
            }
        }
        let expect: Vec<(u32, u32)> = docs.into_iter().zip(tfs).collect();
        prop_assert_eq!(reassembled, expect);
    }

    #[test]
    fn file_roundtrip_preserves_answers(
        (docs_a, tfs_a) in posting_columns(3_000),
        (docs_b, tfs_b) in posting_columns(3_000),
        k in 1usize..30,
    ) {
        let index = build(
            &[("aa".into(), docs_a, tfs_a), ("bb".into(), docs_b, tfs_b)],
            3_000,
        );
        let mut buf = Vec::new();
        boss_index::io::write_index(&index, &mut buf).unwrap();
        let revived = boss_index::io::read_index(buf.as_slice()).unwrap();
        let q = QueryExpr::or([QueryExpr::term("aa"), QueryExpr::term("bb")]);
        let a = boss_index::reference::evaluate(&index, &q, k).unwrap();
        let b = boss_index::reference::evaluate(&revived, &q, k).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn device_agrees_with_reference_on_random_two_lists(
        (docs_a, tfs_a) in posting_columns(2_000),
        (docs_b, tfs_b) in posting_columns(2_000),
        union in any::<bool>(),
        k in 1usize..50,
    ) {
        let index = build(
            &[("aa".into(), docs_a, tfs_a), ("bb".into(), docs_b, tfs_b)],
            2_000,
        );
        let q = if union {
            QueryExpr::or([QueryExpr::term("aa"), QueryExpr::term("bb")])
        } else {
            QueryExpr::and([QueryExpr::term("aa"), QueryExpr::term("bb")])
        };
        let mut dev = BossDevice::new(&index, BossConfig::default().with_k(k));
        let got = dev.search_expr(&q, k).unwrap();
        let expect = boss_index::reference::evaluate(&index, &q, k).unwrap();
        prop_assert_eq!(got.hits, expect);
    }
}
