//! Cross-system invariants: the bandwidth-efficiency relations the paper's
//! argument rests on, checked as properties rather than eyeballed charts.

use boss_core::{BossConfig, BossDevice, EtMode};
use boss_iiu::{IiuConfig, IiuEngine};
use boss_scm::AccessCategory;
use boss_workload::corpus::{CorpusSpec, Scale};
use boss_workload::queries::{QuerySampler, QueryType};

fn corpus() -> boss_index::InvertedIndex {
    CorpusSpec::clueweb12_like(Scale::Smoke)
        .build()
        .expect("corpus builds")
}

#[test]
fn boss_result_traffic_is_bounded_by_k() {
    let index = corpus();
    let mut sampler = QuerySampler::new(&index, 1).unwrap();
    let mut dev = BossDevice::new(&index, BossConfig::default().with_k(100));
    let iiu = IiuEngine::new(&index, IiuConfig::default());
    for qt in [QueryType::Q1, QueryType::Q3, QueryType::Q5] {
        let q = sampler.sample(qt).unwrap().expr;
        let b = dev.search_expr(&q, 100).expect("runs");
        let i = iiu.execute(&q, 100).expect("runs");
        assert!(b.mem.bytes(AccessCategory::StResult) <= 100 * 8, "{qt:?}");
        assert!(
            i.mem.bytes(AccessCategory::StResult) >= b.mem.bytes(AccessCategory::StResult),
            "{qt:?}: IIU writes the whole scored list"
        );
    }
}

#[test]
fn boss_never_spills_intermediates() {
    let index = corpus();
    let mut sampler = QuerySampler::new(&index, 2).unwrap();
    let mut dev = BossDevice::new(&index, BossConfig::default());
    let iiu = IiuEngine::new(&index, IiuConfig::default());
    for qt in [QueryType::Q2, QueryType::Q4, QueryType::Q6] {
        let q = sampler.sample(qt).unwrap().expr;
        let b = dev.search_expr(&q, 100).expect("runs");
        assert_eq!(b.mem.bytes(AccessCategory::StInter), 0, "{qt:?}");
        assert_eq!(b.mem.bytes(AccessCategory::LdInter), 0, "{qt:?}");
        let i = iiu.execute(&q, 100).expect("runs");
        assert!(
            i.mem.bytes(AccessCategory::StInter) > 0,
            "{qt:?}: IIU spills"
        );
    }
}

#[test]
fn boss_union_traffic_not_above_iiu() {
    let index = corpus();
    let mut sampler = QuerySampler::new(&index, 3).unwrap();
    let mut dev = BossDevice::new(&index, BossConfig::default().with_k(100));
    let iiu = IiuEngine::new(&index, IiuConfig::default());
    for qt in [QueryType::Q3, QueryType::Q5] {
        for _ in 0..3 {
            let q = sampler.sample(qt).unwrap().expr;
            let b = dev.search_expr(&q, 100).expect("runs");
            let i = iiu.execute(&q, 100).expect("runs");
            assert!(
                b.mem.total_bytes() <= i.mem.total_bytes(),
                "{qt:?} {q}: BOSS {} vs IIU {}",
                b.mem.total_bytes(),
                i.mem.total_bytes()
            );
        }
    }
}

#[test]
fn eval_counters_conserved_for_unions() {
    // Every candidate document is either scored or skipped. Scoring
    // counts a document once, but skipping is accounted per stream — a
    // document shared by several posting lists can be bypassed once in
    // each — so the total is a lower bound, not an equality.
    let index = corpus();
    let mut sampler = QuerySampler::new(&index, 4).unwrap();
    let q = sampler.sample(QueryType::Q5).unwrap().expr;
    let total = {
        let mut dev = BossDevice::new(
            &index,
            BossConfig::default().with_et(EtMode::Exhaustive).with_k(10),
        );
        dev.search_expr(&q, 10).expect("runs").eval.docs_scored
    };
    for et in [EtMode::BlockOnly, EtMode::Full] {
        let mut dev = BossDevice::new(&index, BossConfig::default().with_et(et).with_k(10));
        let out = dev.search_expr(&q, 10).expect("runs");
        assert!(
            out.eval.docs_total() >= total,
            "{et:?}: {} candidates accounted, exhaustive scored {total}",
            out.eval.docs_total()
        );
        assert!(
            out.eval.docs_scored <= total,
            "{et:?}: pruning must never score more than exhaustive"
        );
    }
}

#[test]
fn smaller_k_never_scores_more() {
    let index = corpus();
    let mut sampler = QuerySampler::new(&index, 5).unwrap();
    let q = sampler.sample(QueryType::Q5).unwrap().expr;
    let mut prev = u64::MAX;
    for k in [1000usize, 100, 10] {
        let mut dev = BossDevice::new(&index, BossConfig::default().with_k(k));
        let out = dev.search_expr(&q, k).expect("runs");
        assert!(out.eval.docs_scored <= prev, "k={k}");
        prev = out.eval.docs_scored;
    }
}

#[test]
fn tlb_steady_state_hits() {
    // One 2 GB page covers these shard images: after the first touch the
    // TLB never misses, which is the paper's address-translation claim.
    let index = corpus();
    let image = boss_index::layout::IndexImage::new(&index);
    assert!(image.total_bytes() < 2 << 30, "shard fits one huge page");
    let mut tlb = boss_core::Tlb::new();
    let mut misses = 0;
    for id in index.term_ids().take(100) {
        let (_, hit) = tlb.translate(image.meta_addr(id));
        if !hit {
            misses += 1;
        }
    }
    assert_eq!(misses, 1);
    assert!(tlb.stats().hit_rate() > 0.98);
}

#[test]
fn hybrid_index_no_larger_than_best_fixed() {
    use boss_compress::ALL_SCHEMES;
    use boss_index::{IndexBuilder, PostingList};
    let docs: Vec<u32> = (0..4000u32).map(|i| i * 3).collect();
    let tfs = vec![1u32; 4000];
    let list = PostingList::from_columns(docs, tfs).expect("valid");
    let hybrid = IndexBuilder::new()
        .add_posting_list("t", &list)
        .doc_lens(vec![10; 12000])
        .build()
        .expect("builds");
    for s in ALL_SCHEMES {
        if let Ok(fixed) = IndexBuilder::new()
            .add_posting_list("t", &list)
            .doc_lens(vec![10; 12000])
            .scheme(boss_index::SchemeChoice::Fixed(s))
            .build()
        {
            assert!(hybrid.total_data_bytes() <= fixed.total_data_bytes(), "{s}");
        }
    }
}
