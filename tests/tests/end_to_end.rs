//! End-to-end integration: synthetic corpus → three engines → identical
//! results, with the paper's qualitative relations holding.

use boss_core::{BossConfig, BossDevice, EtMode};
use boss_iiu::{IiuConfig, IiuEngine};
use boss_luceneish::{LuceneConfig, LuceneEngine};
use boss_scm::MemoryConfig;
use boss_workload::corpus::{CorpusSpec, Scale};
use boss_workload::queries::{QuerySampler, ALL_QUERY_TYPES};

fn corpus() -> boss_index::InvertedIndex {
    CorpusSpec::ccnews_like(Scale::Smoke)
        .build()
        .expect("corpus builds")
}

#[test]
fn three_engines_agree_on_every_query_type() {
    let index = corpus();
    let mut sampler = QuerySampler::new(&index, 31).unwrap();
    let mut boss = BossDevice::new(&index, BossConfig::default().with_k(200));
    let iiu = IiuEngine::new(&index, IiuConfig::default());
    let lucene = LuceneEngine::new(&index, LuceneConfig::default());
    for qt in ALL_QUERY_TYPES {
        for _ in 0..3 {
            let q = sampler.sample(qt).unwrap().expr;
            let b = boss.search_expr(&q, 200).expect("boss runs");
            let i = iiu.execute(&q, 200).expect("iiu runs");
            let l = lucene.execute(&q, 200).expect("lucene runs");
            assert_eq!(b.hits, i.hits, "{qt:?} {q}");
            assert_eq!(b.hits, l.hits, "{qt:?} {q}");
            // And all agree with the reference oracle.
            let r = boss_index::reference::evaluate(&index, &q, 200).expect("reference runs");
            assert_eq!(b.hits, r, "{qt:?} {q}");
        }
    }
}

#[test]
fn et_modes_identical_results_different_work() {
    let index = corpus();
    let mut sampler = QuerySampler::new(&index, 77).unwrap();
    let q = sampler
        .sample(boss_workload::queries::QueryType::Q5)
        .unwrap()
        .expr;
    let mut hits = None;
    let mut scored = Vec::new();
    for et in [EtMode::Exhaustive, EtMode::BlockOnly, EtMode::Full] {
        let mut dev = BossDevice::new(&index, BossConfig::default().with_et(et).with_k(10));
        let out = dev.search_expr(&q, 10).expect("runs");
        if let Some(prev) = &hits {
            assert_eq!(&out.hits, prev, "{et:?}");
        } else {
            hits = Some(out.hits.clone());
        }
        scored.push(out.eval.docs_scored);
    }
    assert!(
        scored[2] <= scored[1] && scored[1] <= scored[0],
        "monotone pruning: {scored:?}"
    );
    assert!(
        scored[2] < scored[0],
        "full ET must actually skip on a Q5 with k=10"
    );
}

#[test]
fn dram_never_slower_than_scm() {
    let index = corpus();
    let mut sampler = QuerySampler::new(&index, 5).unwrap();
    let queries: Vec<_> = sampler
        .trec_like_mix(12)
        .unwrap()
        .into_iter()
        .map(|t| t.expr)
        .collect();

    let mut boss_scm = BossDevice::new(&index, BossConfig::default());
    let mut boss_dram = BossDevice::new(
        &index,
        BossConfig::default().on_memory(MemoryConfig::ddr4_2666()),
    );
    let b_scm = boss_scm.run_batch(&queries, 100).expect("runs");
    let b_dram = boss_dram.run_batch(&queries, 100).expect("runs");
    assert!(
        b_dram.makespan_cycles <= b_scm.makespan_cycles,
        "BOSS on DRAM is at least as fast"
    );

    let l_scm = LuceneEngine::new(&index, LuceneConfig::default());
    let l_dram = LuceneEngine::new(
        &index,
        LuceneConfig::default().on_memory(MemoryConfig::host_ddr4_6ch()),
    );
    let (_, m_scm) = l_scm.run_batch(&queries, 100).expect("runs");
    let (_, m_dram) = l_dram.run_batch(&queries, 100).expect("runs");
    assert!(m_dram <= m_scm);
    // Lucene is compute-bound: the DRAM advantage stays small.
    assert!(m_scm as f64 / m_dram as f64 <= 1.30, "{m_scm} vs {m_dram}");
}

#[test]
fn index_serializes_and_answers_identically() {
    let index = corpus();
    let json = serde_json::to_string(&index).expect("serializes");
    let revived: boss_index::InvertedIndex = serde_json::from_str(&json).expect("deserializes");
    let mut sampler = QuerySampler::new(&index, 12).unwrap();
    let q = sampler
        .sample(boss_workload::queries::QueryType::Q3)
        .unwrap()
        .expr;
    let a = boss_index::reference::evaluate(&index, &q, 50).expect("runs");
    let b = boss_index::reference::evaluate(&revived, &q, 50).expect("runs");
    assert_eq!(a, b);
}

#[test]
fn offload_api_round_trip() {
    use boss_core::{BossHandle, SearchRequest};
    let index = corpus();
    let mut h = BossHandle::init(&index, BossConfig::default());
    // Build an expression from real vocabulary.
    let mut sampler = QuerySampler::new(&index, 3).unwrap();
    let terms = sampler.sample_terms(3).unwrap();
    let q = format!(
        "\"{}\" AND (\"{}\" OR \"{}\")",
        terms[0], terms[1], terms[2]
    );
    let out = h
        .search(&SearchRequest::new(&q).with_k(25))
        .expect("api search runs");
    let expr = boss_core::parse_query(&q).expect("parses");
    let expect = boss_index::reference::evaluate(&index, &expr, 25).expect("reference runs");
    assert_eq!(out.hits, expect);
}
