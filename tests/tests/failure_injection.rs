//! Failure injection: malformed data and invalid requests fail loudly and
//! precisely, never silently or by panic.

use boss_compress::{codec_for, BlockInfo, Scheme, ALL_SCHEMES};
use boss_core::{parse_query, BossConfig, BossHandle, SearchRequest};
use boss_decomp::DecompEngine;
use boss_index::{IndexBuilder, PostingList, QueryExpr};

#[test]
fn corrupted_blocks_surface_codec_errors() {
    for s in ALL_SCHEMES {
        let values: Vec<u32> = (0..128u32).map(|i| i % 19 + (i % 11) * 300).collect();
        let codec = codec_for(s);
        let mut buf = Vec::new();
        let info = codec.encode(&values, &mut buf).expect("encodes");
        // Truncation must be detected.
        if buf.len() > 2 {
            let short = &buf[..buf.len() / 2];
            assert!(
                codec.decode(short, &info, &mut Vec::new()).is_err(),
                "{s} truncated"
            );
        }
        // A count larger than the data supports must be detected.
        let overlong = BlockInfo {
            count: info.count + 64,
            ..info
        };
        let result = codec.decode(&buf, &overlong, &mut Vec::new());
        // Some schemes can legally pad (BP width 0); others must error.
        if info.bit_width > 0 || matches!(s, Scheme::Vb | Scheme::S16 | Scheme::S8b) {
            assert!(result.is_err(), "{s} overlong count");
        }
    }
}

#[test]
fn decomp_engine_rejects_broken_configs() {
    // No extractor enabled.
    assert!(DecompEngine::from_config_text("UseDelta = 1\n").is_err());
    // Undefined wire.
    assert!(
        DecompEngine::from_config_text("Extractor[0].use = 1\nOutput := ADD(nothing, 1)\n")
            .is_err()
    );
    // Unknown primitive.
    assert!(DecompEngine::from_config_text("Extractor[0].use = 1\nx := NAND(Input, 1)\n").is_err());
    // Garbage line.
    assert!(DecompEngine::from_config_text("Extractor[0].use = 1\n$$$\n").is_err());
}

#[test]
fn invalid_posting_data_rejected_at_build() {
    let unsorted = PostingList::from_columns(vec![5, 4], vec![1, 1]);
    assert!(unsorted.is_err());
    let zero_tf = PostingList::from_columns(vec![1, 2], vec![1, 0]);
    assert!(zero_tf.is_err());
    assert!(IndexBuilder::new().build().is_err(), "empty index rejected");
}

#[test]
fn api_rejects_malformed_and_oversized_queries() {
    let index = IndexBuilder::new()
        .add_documents(["alpha beta gamma", "beta gamma delta"])
        .build()
        .expect("builds");
    let mut h = BossHandle::init(&index, BossConfig::default());

    for bad in [
        "",
        "alpha",                 // unquoted
        r#""alpha" AND"#,        // dangling operator
        r#"("alpha" OR "beta""#, // unbalanced
        r#""" OR "beta""#,       // empty term
    ] {
        assert!(h.search(&SearchRequest::new(bad)).is_err(), "{bad:?}");
    }

    // 17 distinct terms exceed the hardware limit.
    let wide: Vec<String> = (0..17).map(|i| format!("\"w{i}\"")).collect();
    assert!(h.search(&SearchRequest::new(wide.join(" OR "))).is_err());

    // Unknown term: a planning error, not a panic.
    assert!(h.search(&SearchRequest::new(r#""zebra""#)).is_err());

    // A 17-term AND exceeds even the 4-chained-core intersection width.
    let and17: Vec<String> = (0..17).map(|i| format!("\"t{i}\"")).collect();
    let q = and17.join(" AND ");
    assert!(parse_query(&q).is_ok(), "parses fine");
    assert!(
        h.search(&SearchRequest::new(q)).is_err(),
        "but cannot be planned"
    );
}

#[test]
fn queries_against_vocabulary_edge_cases() {
    let index = IndexBuilder::new()
        .add_documents(["only one document with words"])
        .build()
        .expect("builds");
    let mut h = BossHandle::init(&index, BossConfig::default());
    let out = h
        .search(&SearchRequest::new(r#""document""#).with_k(10))
        .expect("runs");
    assert_eq!(out.hits.len(), 1);
    // k far above the corpus size.
    let out = h
        .search(&SearchRequest::new(r#""document""#).with_k(100_000))
        .expect("runs");
    assert_eq!(out.hits.len(), 1);
}

#[test]
fn mixed_queries_with_unknown_branch_fail_atomically() {
    let index = IndexBuilder::new()
        .add_documents(["alpha beta", "beta gamma"])
        .build()
        .expect("builds");
    let mut dev = boss_core::BossDevice::new(&index, BossConfig::default());
    let q = QueryExpr::and([QueryExpr::term("alpha"), QueryExpr::term("missing")]);
    assert!(dev.search_expr(&q, 5).is_err());
    // The batch API fails before executing anything.
    let batch = dev.run_batch(&[QueryExpr::term("alpha"), q], 5);
    assert!(batch.is_err());
}
