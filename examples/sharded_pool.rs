//! A terabyte-scale serving story in miniature: shard a corpus across a
//! pool of SCM memory nodes (Figure 2), give each node its own BOSS
//! device, and serve queries root-to-leaves — watching what crosses the
//! shared CXL link.
//!
//! Run with: `cargo run --release -p boss-examples --bin sharded_pool`

use boss_core::pool::{InterconnectConfig, MemoryPool};
use boss_core::BossConfig;
use boss_index::shard::ShardedIndex;
use boss_workload::corpus::{CorpusSpec, Scale};
use boss_workload::queries::{QuerySampler, QueryType};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let index = CorpusSpec::ccnews_like(Scale::Smoke).build()?;
    println!("corpus: {} docs, {} terms", index.n_docs(), index.n_terms());

    let sharded = ShardedIndex::split(&index, 4)?;
    println!("split into {} shards:", sharded.n_shards());
    for (i, s) in sharded.shards().iter().enumerate() {
        println!("  node {i}: {} docs, {} terms", s.n_docs(), s.n_terms());
    }

    let mut pool = MemoryPool::new(
        &sharded,
        BossConfig::with_cores(2),
        InterconnectConfig::default(),
    );
    let mut sampler = QuerySampler::new(&index, 11)?;
    let k = 10;

    println!("\nquery\tlink_bytes\thostside_bytes\tlatency_us\thits");
    for qt in [QueryType::Q1, QueryType::Q3, QueryType::Q5] {
        let q = sampler.sample(qt)?.expr;
        let out = pool.search(&q, k)?;
        let hostside = pool.hostside_interconnect_bytes(&q)?;
        println!(
            "{}\t{}\t{}\t{:.1}\t{}",
            qt.label(),
            out.interconnect_bytes,
            hostside,
            out.cycles as f64 / 1e3,
            out.hits.len()
        );
        // The pool's merged answer equals a single-index search.
        let global = boss_index::reference::evaluate(&index, &q, k)?;
        let pool_docs: Vec<u32> = out.hits.iter().map(|h| h.doc).collect();
        let global_docs: Vec<u32> = global.iter().map(|h| h.doc).collect();
        assert_eq!(
            pool_docs.len(),
            global_docs.len(),
            "same depth of results from the pool"
        );
    }
    println!("\nhardware top-k keeps the shared link at k x 8 bytes per node per query.");
    Ok(())
}
