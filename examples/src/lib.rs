//! Examples-only package; see the binaries declared in `Cargo.toml`.
