//! A news-search scenario: a CC-News-like synthetic shard served by all
//! three engines (BOSS, IIU, the Lucene-like CPU baseline), with a
//! TREC-style query mix — the workload of the paper's evaluation.
//!
//! Run with: `cargo run --release -p boss-examples --bin news_search`

use boss_core::{BossConfig, BossDevice, EtMode};
use boss_iiu::{IiuConfig, IiuEngine};
use boss_luceneish::{LuceneConfig, LuceneEngine};
use boss_workload::corpus::{CorpusSpec, Scale};
use boss_workload::queries::QuerySampler;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("building ccnews-like corpus (smoke scale)...");
    let index = CorpusSpec::ccnews_like(Scale::Smoke).build()?;
    println!(
        "  {} docs, {} terms, index {:.1} MiB compressed ({:.1} MiB raw)",
        index.n_docs(),
        index.n_terms(),
        index.total_data_bytes() as f64 / (1 << 20) as f64,
        index.total_raw_bytes() as f64 / (1 << 20) as f64,
    );

    let mut sampler = QuerySampler::new(&index, 2026)?;
    let queries: Vec<_> = sampler.trec_like_mix(30)?;
    let k = 10;

    let mut boss = BossDevice::new(
        &index,
        BossConfig::default().with_et(EtMode::Full).with_k(k),
    );
    let iiu = IiuEngine::new(&index, IiuConfig::default());
    let lucene = LuceneEngine::new(&index, LuceneConfig::default());

    let mut agree = 0;
    let mut boss_cycles = 0u64;
    for tq in &queries {
        let b = boss.search_expr(&tq.expr, k)?;
        let i = iiu.execute(&tq.expr, k)?;
        let l = lucene.execute(&tq.expr, k)?;
        if b.hits == i.hits && b.hits == l.hits {
            agree += 1;
        }
        boss_cycles += b.cycles;
    }
    println!("\nran {} TREC-like queries (k={k})", queries.len());
    println!(
        "all three engines agreed on {agree}/{} result lists",
        queries.len()
    );
    println!(
        "BOSS mean latency: {:.1} us/query at 1 GHz",
        boss_cycles as f64 / queries.len() as f64 / 1e3
    );

    // Show one query end to end.
    let tq = &queries[1];
    let out = boss.search_expr(&tq.expr, 5)?;
    println!("\nexample {:?} query {}", tq.qtype, tq.expr);
    for h in &out.hits {
        println!("  doc {:>6}  score {:.3}", h.doc, h.score);
    }
    Ok(())
}
