//! Programming the decompression module with a *custom* scheme — the
//! Section III-B claim that "a new decompression scheme can be supported
//! if it can be expressed by composing those primitive units".
//!
//! The custom scheme here is "xor-delta": fixed-width fields XORed with a
//! rolling register (a toy differential encoding). We write its encoder in
//! ten lines, write the Figure-8-style config for the datapath, and verify
//! the programmable engine decodes it.
//!
//! Run with: `cargo run -p boss-examples --bin custom_codec`

use boss_compress::{BitWriter, BlockInfo};
use boss_decomp::DecompEngine;

/// Encode: `v[i]` is stored as `v[i] XOR v[i-1]` in fixed 12-bit fields.
fn encode_xor_delta(values: &[u32], out: &mut Vec<u8>) -> BlockInfo {
    let mut w = BitWriter::new(out);
    let mut prev = 0u32;
    for &v in values {
        assert!(v < (1 << 12), "demo scheme holds 12-bit values");
        w.write(v ^ prev, 12);
        prev = v;
    }
    w.finish();
    BlockInfo {
        count: values.len() as u16,
        bit_width: 12,
        exception_offset: 0,
    }
}

const XOR_DELTA_CONFIG: &str = "
// Stage 1: fixed-width extractor (width from block metadata)
Extractor[0].use = 1
Extractor[1].use = 0
Extractor[2].use = 0
// Stage 2: undo the XOR chain with one register and one XOR unit
RegInit( Prev, 0, 0 )
cur := XOR(Input, Prev)
Prev := cur
Output := cur
Output.valid := 1
// Stage 3
UseExceptions = 0
// Stage 4: values are already absolute
UseDelta = 0
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let values: Vec<u32> = (0..40u32).map(|i| (i * 97) % 4096).collect();
    let mut data = Vec::new();
    let info = encode_xor_delta(&values, &mut data);
    println!(
        "encoded {} values into {} bytes (12-bit xor-delta)",
        values.len(),
        data.len()
    );

    let engine = DecompEngine::from_config_text(XOR_DELTA_CONFIG)?;
    let decoded = engine.decode(&data, &info)?;
    assert_eq!(decoded.values, values);
    println!(
        "programmable datapath decoded them back in {} cycles",
        decoded.cycles
    );
    println!("first ten: {:?}", &decoded.values[..10]);
    println!(
        "\nno new hardware was invented: one XOR primitive + one register, wired by config text."
    );
    Ok(())
}
