//! Quickstart: build an index from a handful of documents, initialize a
//! BOSS device, and run queries through the `search()` offload API.
//!
//! Run with: `cargo run -p boss-examples --bin quickstart`

use boss_core::{BossConfig, BossHandle, SearchRequest};
use boss_index::IndexBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build an inverted index (hybrid-compressed, BM25-ready).
    let documents = [
        "storage class memory brings terabyte scale pools",
        "near data processing saves interconnect bandwidth",
        "inverted index search drives the modern web",
        "the accelerator sits beside the memory pool",
        "bandwidth is the scarce resource of the memory pool",
        "early termination skips documents that cannot rank",
    ];
    let index = IndexBuilder::new().add_documents(documents).build()?;
    println!("indexed {} docs, {} terms", index.n_docs(), index.n_terms());

    // 2. init(): bind the index image to a BOSS device.
    let mut boss = BossHandle::init(&index, BossConfig::default());

    // 3. search(): the paper's query-expression syntax.
    for q in [
        r#""memory""#,
        r#""memory" AND "pool""#,
        r#""bandwidth" OR "search""#,
        r#""memory" AND ("bandwidth" OR "pool")"#,
    ] {
        let out = boss.search(&SearchRequest::new(q).with_k(3))?;
        println!("\nquery {q}");
        for hit in &out.hits {
            println!(
                "  doc {:>2}  score {:.3}  | {}",
                hit.doc, hit.score, documents[hit.doc as usize]
            );
        }
        println!(
            "  [{} cycles, {} bytes of SCM traffic, {} docs scored, {} skipped]",
            out.cycles,
            out.mem.total_bytes(),
            out.eval.docs_scored,
            out.eval.docs_skipped_block + out.eval.docs_skipped_wand
        );
    }
    Ok(())
}
