//! Pooled-memory scaling study: how BOSS and IIU throughput scale with
//! core count on an SCM node, and where the bandwidth roofline bites —
//! the architectural argument of Sections I and III.
//!
//! Run with: `cargo run --release -p boss-examples --bin pooled_memory_scaling`

use boss_core::{BossConfig, BossDevice, EtMode};
use boss_iiu::{IiuConfig, IiuEngine};
use boss_scm::MemoryConfig;
use boss_workload::corpus::{CorpusSpec, Scale};
use boss_workload::queries::QuerySampler;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let index = CorpusSpec::clueweb12_like(Scale::Smoke).build()?;
    let mut sampler = QuerySampler::new(&index, 7)?;
    let queries: Vec<_> = sampler
        .trec_like_mix(48)?
        .into_iter()
        .map(|t| t.expr)
        .collect();
    let k = 100;

    println!("cores\tBOSS qps\tIIU qps\tBOSS GB/s\tIIU GB/s");
    for cores in [1u32, 2, 4, 8, 16] {
        let mut boss = BossDevice::new(
            &index,
            BossConfig::with_cores(cores)
                .with_et(EtMode::Full)
                .with_k(k),
        );
        let batch = boss.run_batch(&queries, k)?;
        let boss_qps = batch.throughput_qps(1.0);
        let boss_bw = batch.bandwidth_gbps();

        let engine = IiuEngine::new(&index, IiuConfig::with_cores(cores));
        let mut busy = vec![0u64; cores as usize];
        let mut bytes = 0u64;
        let mut channel_busy = 0u64;
        for q in &queries {
            let out = engine.execute(q, k)?;
            *busy.iter_mut().min_by_key(|x| **x).expect("cores > 0") += out.cycles;
            bytes += out.mem.total_bytes();
            channel_busy += out.mem.busy_cycles;
        }
        let channels = u64::from(MemoryConfig::optane_dcpmm().channels);
        let makespan = busy
            .into_iter()
            .max()
            .unwrap_or(0)
            .max(channel_busy / channels);
        let iiu_qps = queries.len() as f64 / (makespan as f64 / 1e9);
        let iiu_bw = bytes as f64 / makespan as f64;
        println!(
            "{cores}\t{:.0}\t{:.0}\t{:.2}\t{:.2}",
            boss_qps, iiu_qps, boss_bw, iiu_bw
        );
    }
    println!("\nBOSS keeps scaling where IIU saturates: bandwidth efficiency is the headroom.");
    Ok(())
}
