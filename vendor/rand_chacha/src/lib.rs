//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 keystream RNG.
//!
//! The workspace's reproducibility story rests on `ChaCha8Rng` being a
//! deterministic, platform-independent, statistically solid generator —
//! so this vendored version implements the actual ChaCha8 block function
//! (RFC 8439 quarter-rounds, 8 rounds) rather than a toy LCG. Stream
//! positions and seeds produce the same values on every platform.

pub use rand::{RngCore, SeedableRng};

/// Re-export of the core traits under the name call sites import.
pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A ChaCha RNG with 8 rounds, keyed by a 32-byte seed.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words (seed).
    key: [u32; 8],
    /// 64-bit block counter; the remaining 64 nonce bits stay zero.
    counter: u64,
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word in `block` (16 = exhausted).
    index: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds (column + diagonal).
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(&input) {
            *out = out.wrapping_add(*inp);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = ChaCha8Rng::seed_from_u64(99);
        let mut b = ChaCha8Rng::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u32> = (0..8).map(|_| a.next_u32()).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.next_u32()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn keystream_not_degenerate() {
        // Bit balance sanity: ~50% ones over a few thousand words.
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let ones: u32 = (0..4096).map(|_| r.next_u32().count_ones()).sum();
        let total = 4096 * 32;
        let frac = f64::from(ones) / f64::from(total);
        assert!((frac - 0.5).abs() < 0.01, "bit balance {frac}");
    }

    #[test]
    fn blocks_advance() {
        let mut r = ChaCha8Rng::seed_from_u64(3);
        let first: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        assert_ne!(first, second);
    }
}
