//! Offline stand-in for `criterion`.
//!
//! Provides the `criterion_group!`/`criterion_main!` entry points and the
//! `BenchmarkGroup`/`Bencher` surface the workspace's benches use, backed
//! by a plain wall-clock timing loop (short warm-up, fixed measurement
//! window, mean ns/iter printed to stdout). No statistics, plots, or
//! baselines — just enough to run `cargo bench` offline and spot gross
//! regressions.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Throughput annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifies one benchmark within a group: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

/// Runs one benchmark's timing loop.
pub struct Bencher {
    /// Mean nanoseconds per iteration, set by [`Bencher::iter`].
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine`: brief warm-up, then enough iterations to fill the
    /// measurement window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warmup_end = Instant::now() + Duration::from_millis(50);
        let mut warmup_iters: u64 = 0;
        while Instant::now() < warmup_end {
            std::hint::black_box(routine());
            warmup_iters += 1;
        }
        // Size batches from the warm-up rate; measure ~200 ms.
        let batch = warmup_iters.div_ceil(5).max(1);
        let mut iters: u64 = 0;
        let started = Instant::now();
        let deadline = started + Duration::from_millis(200);
        while Instant::now() < deadline {
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            iters += batch;
        }
        self.ns_per_iter = started.elapsed().as_nanos() as f64 / iters as f64;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Benchmarks `f` with a fixed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b, input);
        self.report(&id.id, b.ns_per_iter);
        self
    }

    /// Benchmarks a routine with no external input.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        self.report(&id.to_string(), b.ns_per_iter);
        self
    }

    fn report(&self, id: &str, ns: f64) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if ns > 0.0 => {
                format!("  ({:.1} Melem/s)", n as f64 / ns * 1e3)
            }
            Some(Throughput::Bytes(n)) if ns > 0.0 => {
                format!("  ({:.1} MiB/s)", n as f64 / ns * 1e9 / (1024.0 * 1024.0))
            }
            _ => String::new(),
        };
        println!("{}/{id}: {ns:.1} ns/iter{rate}", self.name);
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmarks a routine outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Bundles benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_nonzero_time() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.throughput(Throughput::Elements(16));
        let mut observed = 0.0;
        group.bench_with_input(BenchmarkId::new("sum", 16), &16u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
            observed = b.ns_per_iter;
        });
        group.finish();
        assert!(observed > 0.0);
    }
}
