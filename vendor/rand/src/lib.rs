//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the *exact* RNG surface it consumes: [`RngCore`], [`SeedableRng`] (with
//! the standard SplitMix64 `seed_from_u64` expansion) and [`RngExt`] with
//! uniform range sampling. Everything is deterministic given the seed,
//! which is all the simulators require.

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

/// An RNG constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The raw seed type, e.g. `[u8; 32]`.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with SplitMix64 (the same
    /// expansion `rand_core` uses, so seeds stay portable).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// A half-open or inclusive range that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide);
                // Widening-multiply rejection-free mapping; the bias over a
                // 64-bit draw is negligible for simulation workloads.
                let draw = rng.next_u64() as $wide;
                self.start.wrapping_add((draw % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as $wide).wrapping_sub(start as $wide).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return (rng.next_u64() as $wide) as $t;
                }
                let draw = rng.next_u64() as $wide;
                start.wrapping_add((draw % span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
                i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait RngExt: RngCore {
    /// Uniform sample from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// A uniformly random `bool`.
    fn random_bool(&mut self) -> bool {
        self.next_u32() & 1 == 1
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Alias matching older `rand` spellings.
pub use RngExt as Rng;

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // xorshift so range tests see varied high/low bits
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Counter(0x1234_5678_9abc_def0);
        for _ in 0..1000 {
            let v: u32 = r.random_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = r.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let i: i32 = r.random_range(-5..5);
            assert!((-5..5).contains(&i));
            let inc: u8 = r.random_range(0..=255);
            let _ = inc;
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = Counter(42);
        let mut buf = [0u8; 7];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
