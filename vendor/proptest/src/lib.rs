//! Offline stand-in for `proptest`.
//!
//! Implements the subset of proptest this workspace uses: the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`/`prop_recursive`,
//! range and tuple strategies, `prop::collection::{vec, btree_set}`,
//! `prop::sample::select`, weighted `prop_oneof!`, and the `proptest!`
//! test macro with `#![proptest_config(..)]`. Cases are generated from a
//! deterministic per-test RNG (seeded from the test name) and failures
//! print the sampled inputs. There is **no shrinking**: the failing case
//! is reported as drawn.

use std::collections::BTreeSet;
use std::fmt::Debug;
use std::sync::Arc;

/// Test-case failure carried out of a `proptest!` body.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Assertion failure with a message.
    Fail(String),
}

impl TestCaseError {
    /// Creates a failure from a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => f.write_str(m),
        }
    }
}

/// Deterministic generator used to draw test cases (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator; `proptest!` derives the seed from the test name.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x5DEE_CE66_D1CE_4E5B,
        }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// A generator of values for property tests.
///
/// Unlike real proptest there is no value tree: strategies sample
/// directly and failures are not shrunk.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then samples the strategy `f` builds from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Builds a recursive strategy: `self` generates leaves and `branch`
    /// wraps an inner strategy into one recursion layer. The recursion is
    /// unrolled eagerly to `depth` layers, with each layer choosing
    /// between a leaf (weight 1) and a deeper value (weight 2).
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let deeper = branch(strat).boxed();
            strat = Union::new(vec![(1, leaf.clone()), (2, deeper)]).boxed();
        }
        strat
    }

    /// Type-erases the strategy behind a cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(move |rng| self.sample(rng)))
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice between boxed strategies; built by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T: Debug> Union<T> {
    /// Creates a union from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! weights must not all be zero");
        Union { arms, total }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return s.sample(rng);
            }
            pick -= w;
        }
        unreachable!("weight bookkeeping")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: any value works.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Types with a canonical "anything goes" strategy, used via [`any`].
pub trait Arbitrary: Debug + Sized {
    /// Draws an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Generates arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection size bound: an exact size or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Smallest allowed size.
    pub min: usize,
    /// One past the largest allowed size.
    pub max_exclusive: usize,
}

impl SizeRange {
    fn draw(&self, rng: &mut TestRng) -> usize {
        if self.max_exclusive - self.min <= 1 {
            self.min
        } else {
            self.min + rng.below((self.max_exclusive - self.min) as u64) as usize
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty length range");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::*;

    /// Strategy for `Vec<T>` with length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.draw(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Generates vectors whose length falls in `len`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    /// Strategy for `BTreeSet<T>` with size drawn from `len`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        len: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.len.draw(rng);
            let mut set = BTreeSet::new();
            // Duplicate draws are discarded; cap the attempts so narrow
            // element domains terminate with a smaller-than-target set.
            let mut attempts = 0;
            while set.len() < target && attempts < target * 10 + 16 {
                set.insert(self.element.sample(rng));
                attempts += 1;
            }
            if set.len() < self.len.min {
                panic!(
                    "btree_set could not draw {} distinct elements (got {})",
                    self.len.min,
                    set.len()
                );
            }
            set
        }
    }

    /// Generates ordered sets whose size falls in `len`.
    pub fn btree_set<S: Strategy>(element: S, len: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            len: len.into(),
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::*;

    /// Strategy picking uniformly from a fixed list.
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }

    /// Picks one of `options` uniformly at random.
    pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }
}

/// Runner configuration and entry points used by the `proptest!` macro.
pub mod test_runner {
    pub use super::TestCaseError;

    /// How many cases each property runs.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases.
        pub cases: u32,
    }

    impl Config {
        /// Builds a config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

pub use test_runner::Config as ProptestConfig;

/// Derives a deterministic RNG seed from a test's module path and name.
pub fn seed_for(name: &str) -> u64 {
    // FNV-1a: stable across platforms and runs.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs one sampled case, capturing panics so inputs can be reported.
pub fn run_case<F>(case: u32, inputs: &str, body: F)
where
    F: FnOnce() -> Result<(), TestCaseError> + std::panic::UnwindSafe,
{
    match std::panic::catch_unwind(body) {
        Ok(Ok(())) => {}
        Ok(Err(e)) => panic!("property failed at case {case}: {e}\n  inputs: {inputs}"),
        Err(panic) => {
            let msg = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!("property panicked at case {case}: {msg}\n  inputs: {inputs}");
        }
    }
}

/// Defines property tests: each `fn` runs its body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::new($crate::seed_for(concat!(module_path!(), "::", stringify!($name))));
            for case in 0..config.cases {
                let values = ($($crate::Strategy::sample(&$strat, &mut rng),)+);
                let inputs = format!("{values:?}");
                let values = ::std::panic::AssertUnwindSafe(values);
                $crate::run_case(case, &inputs, move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    let ::std::panic::AssertUnwindSafe(($($pat,)+)) = values;
                    $body
                    #[allow(unreachable_code)]
                    return Ok(());
                });
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Chooses between strategies, optionally weighted (`w => strat`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(($weight as u32, $crate::Strategy::boxed($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$((1u32, $crate::Strategy::boxed($strat))),+])
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!("assertion failed: ", stringify!($cond))));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`", l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}", l, r, format!($($fmt)+)
            )));
        }
    }};
}

/// The names tests import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng, Union,
    };
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Namespace mirror so call sites can write `prop::collection::vec`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = (10u32..20).sample(&mut rng);
            assert!((10..20).contains(&v));
            let s = (3usize..7).sample(&mut rng);
            assert!((3..7).contains(&s));
        }
    }

    #[test]
    fn vec_lengths_in_range() {
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let v = prop::collection::vec(0u32..100, 2..9).sample(&mut rng);
            assert!(v.len() >= 2 && v.len() < 9);
        }
    }

    #[test]
    fn union_weights_bias_draws() {
        let mut rng = TestRng::new(3);
        let s = prop_oneof![9 => 0u32..1, 1 => 1u32..2];
        let zeros = (0..1000).filter(|_| s.sample(&mut rng) == 0).count();
        assert!(zeros > 800, "expected heavy bias, got {zeros}");
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        #[allow(dead_code)] // fields exist to give the strategies shape
        enum Tree {
            Leaf(u32),
            Node(Vec<Tree>),
        }
        let strat = (0u32..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 8, 2, |inner| {
                prop::collection::vec(inner, 1..3).prop_map(Tree::Node)
            });
        let mut rng = TestRng::new(4);
        let mut saw_node = false;
        for _ in 0..200 {
            if matches!(strat.sample(&mut rng), Tree::Node(_)) {
                saw_node = true;
            }
        }
        assert!(saw_node);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_binds_tuples((a, b) in (0u32..50, 50u32..100), flag in any::<bool>()) {
            prop_assert!(a < 50);
            prop_assert!(b >= 50, "b was {}", b);
            let _ = flag;
            prop_assert_eq!(a + b, b + a);
        }
    }
}
