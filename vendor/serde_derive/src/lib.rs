//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the *vendored* `serde::Serialize`/`serde::Deserialize`
//! (a value-tree model, see `vendor/serde`) for the shapes this workspace
//! actually uses: named-field structs, tuple structs, and enums with unit,
//! tuple, or struct variants. No generics, no `#[serde(...)]` attributes —
//! the macro fails loudly if it meets something it cannot handle, so a
//! future addition cannot silently serialize wrongly.
//!
//! Implemented with raw `proc_macro` token parsing because the container
//! has no `syn`/`quote` either.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    /// Named-field struct: field identifiers in declaration order.
    Struct(Vec<String>),
    /// Tuple struct with N fields.
    Tuple(usize),
    /// Unit struct.
    Unit,
    /// Enum: (variant name, variant shape) pairs.
    Enum(Vec<(String, Shape)>),
}

struct Item {
    name: String,
    shape: Shape,
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    // Skip outer attributes and visibility.
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            panic!("serde derive (vendored): generic type `{name}` not supported");
        }
    }
    let body = iter.next();
    let shape = match (kind.as_str(), body) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::Struct(parse_named_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::Tuple(count_tuple_fields(g.stream()))
        }
        ("struct", _) => Shape::Unit,
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::Enum(parse_variants(g.stream()))
        }
        (k, b) => panic!("serde derive: unsupported item {k} {b:?}"),
    };
    Item { name, shape }
}

/// Parses `{ #[attr] pub name: Type, ... }` field lists into names.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        // Skip attributes + visibility.
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    iter.next();
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tree) = iter.next() else { break };
        let TokenTree::Ident(fname) = tree else {
            panic!("serde derive: expected field name, got {tree:?}");
        };
        fields.push(fname.to_string());
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde derive: expected `:` after field, got {other:?}"),
        }
        // Consume the type: everything until a comma at angle-bracket depth 0.
        let mut angle = 0i32;
        loop {
            match iter.peek() {
                None => break,
                Some(TokenTree::Punct(p)) => {
                    let c = p.as_char();
                    if c == '<' {
                        angle += 1;
                    } else if c == '>' {
                        angle -= 1;
                    } else if c == ',' && angle == 0 {
                        iter.next();
                        break;
                    }
                    iter.next();
                }
                Some(_) => {
                    iter.next();
                }
            }
        }
    }
    fields
}

/// Counts top-level comma-separated segments of a tuple-struct body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut seen_any = false;
    let mut angle = 0i32;
    for tree in stream {
        match &tree {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                if c == '<' {
                    angle += 1;
                } else if c == '>' {
                    angle -= 1;
                } else if c == ',' && angle == 0 {
                    count += 1;
                    seen_any = false;
                    continue;
                }
                seen_any = true;
            }
            _ => seen_any = true,
        }
    }
    if seen_any {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Shape)> {
    let mut variants = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        // Skip attributes.
        while let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() == '#' {
                iter.next();
                iter.next();
            } else {
                break;
            }
        }
        let Some(tree) = iter.next() else { break };
        let TokenTree::Ident(vname) = tree else {
            panic!("serde derive: expected variant name, got {tree:?}");
        };
        let vname = vname.to_string();
        let shape = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                iter.next();
                Shape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                iter.next();
                Shape::Struct(fields)
            }
            _ => Shape::Unit,
        };
        variants.push((vname, shape));
        // Skip optional discriminant and the trailing comma.
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                    iter.next();
                    break;
                }
                None => break,
                _ => {
                    iter.next();
                }
            }
        }
    }
    variants
}

fn emit(src: String) -> TokenStream {
    src.parse().expect("serde derive: generated code parses")
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Map(vec![{}])", pairs.join(", "))
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, shape)| match shape {
                    Shape::Unit => {
                        format!("{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),")
                    }
                    Shape::Tuple(1) => format!(
                        "{name}::{v}(x0) => ::serde::Value::Map(vec![(\"{v}\".to_string(), \
                         ::serde::Serialize::to_value(x0))]),"
                    ),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let vals: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(x{i})"))
                            .collect();
                        format!(
                            "{name}::{v}({b}) => ::serde::Value::Map(vec![(\"{v}\".to_string(), \
                             ::serde::Value::Seq(vec![{vl}]))]),",
                            b = binds.join(", "),
                            vl = vals.join(", ")
                        )
                    }
                    Shape::Struct(fields) => {
                        let binds = fields.join(", ");
                        let pairs: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))")
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Map(vec![(\"{v}\"\
                             .to_string(), ::serde::Value::Map(vec![{p}]))]),",
                            p = pairs.join(", ")
                        )
                    }
                    Shape::Enum(_) => unreachable!("nested enum shape"),
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    emit(format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    ))
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(v.field(\"{f}\")?)?"))
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Shape::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(v)?))"),
        Shape::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(v.index({i})?)?"))
                .collect();
            format!("Ok({name}({}))", inits.join(", "))
        }
        Shape::Unit => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, s)| matches!(s, Shape::Unit))
                .map(|(v, _)| format!("\"{v}\" => return Ok({name}::{v}),"))
                .collect();
            let keyed_arms: Vec<String> = variants
                .iter()
                .filter(|(_, s)| !matches!(s, Shape::Unit))
                .map(|(v, shape)| match shape {
                    Shape::Tuple(1) => format!(
                        "\"{v}\" => return Ok({name}::{v}(::serde::Deserialize::from_value(inner)?)),"
                    ),
                    Shape::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| {
                                format!("::serde::Deserialize::from_value(inner.index({i})?)?")
                            })
                            .collect();
                        format!("\"{v}\" => return Ok({name}::{v}({})),", inits.join(", "))
                    }
                    Shape::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(inner.field(\"{f}\")?)?"
                                )
                            })
                            .collect();
                        format!(
                            "\"{v}\" => return Ok({name}::{v} {{ {} }}),",
                            inits.join(", ")
                        )
                    }
                    _ => unreachable!("unit handled above"),
                })
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {unit}\n\
                         other => Err(::serde::DeError::new(format!(\
                             \"unknown variant {{other}} of {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                         let (key, inner) = (&entries[0].0, &entries[0].1);\n\
                         match key.as_str() {{\n\
                             {keyed}\n\
                             other => {{ let _ = inner; Err(::serde::DeError::new(format!(\
                                 \"unknown variant {{other}} of {name}\"))) }}\n\
                         }}\n\
                     }}\n\
                     _ => Err(::serde::DeError::new(\
                         \"expected enum representation for {name}\".to_string())),\n\
                 }}",
                unit = unit_arms.join("\n"),
                keyed = keyed_arms.join("\n"),
            )
        }
    };
    emit(format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    ))
}
