//! Offline stand-in for `serde`.
//!
//! The build container cannot reach crates.io, so the workspace vendors a
//! minimal serde: `Serialize`/`Deserialize` convert through an owned
//! [`Value`] tree instead of serde's zero-copy visitor machinery. The
//! derive macros (see `vendor/serde_derive`) and the JSON front-end
//! (`vendor/serde_json`) target this model. Representations follow
//! serde's JSON conventions: structs are maps, unit enum variants are
//! strings, data-carrying variants are single-entry maps.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// A self-describing serialized value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Null / unit.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed (negative) integer.
    I64(i64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Key-ordered map (field order preserved).
    Map(Vec<(String, Value)>),
}

/// Deserialization error: a human-readable message with context.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error from a message.
    pub fn new(msg: String) -> Self {
        DeError { msg }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

impl Value {
    /// Looks up a struct field.
    pub fn field(&self, name: &str) -> Result<&Value, DeError> {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| DeError::new(format!("missing field `{name}`"))),
            other => Err(DeError::new(format!(
                "expected map with field `{name}`, got {other:?}"
            ))),
        }
    }

    /// Indexes into a sequence.
    pub fn index(&self, i: usize) -> Result<&Value, DeError> {
        match self {
            Value::Seq(items) => items
                .get(i)
                .ok_or_else(|| DeError::new(format!("sequence too short for index {i}"))),
            other => Err(DeError::new(format!("expected sequence, got {other:?}"))),
        }
    }

    fn as_u64(&self) -> Result<u64, DeError> {
        match self {
            Value::U64(v) => Ok(*v),
            Value::I64(v) if *v >= 0 => Ok(*v as u64),
            other => Err(DeError::new(format!(
                "expected unsigned integer, got {other:?}"
            ))),
        }
    }

    fn as_i64(&self) -> Result<i64, DeError> {
        match self {
            Value::I64(v) => Ok(*v),
            Value::U64(v) if *v <= i64::MAX as u64 => Ok(*v as i64),
            other => Err(DeError::new(format!("expected integer, got {other:?}"))),
        }
    }

    fn as_f64(&self) -> Result<f64, DeError> {
        match self {
            Value::F64(v) => Ok(*v),
            Value::U64(v) => Ok(*v as f64),
            Value::I64(v) => Ok(*v as f64),
            other => Err(DeError::new(format!("expected number, got {other:?}"))),
        }
    }
}

/// Serialization into the [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] on shape or range mismatches.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = v.as_u64()?;
                <$t>::try_from(raw).map_err(|_| DeError::new(
                    format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = v.as_i64()?;
                <$t>::try_from(raw).map_err(|_| DeError::new(
                    format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.as_f64()? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            // A borrowed str cannot reference the transient value tree, so
            // this leaks one allocation per call. The workspace only
            // derives this for small constant tables it never actually
            // deserializes at runtime.
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(DeError::new(format!("expected string, got {other:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        if items.len() != N {
            return Err(DeError::new(format!(
                "expected {N}-element array, got {}",
                items.len()
            )));
        }
        let mut out = [T::default(); N];
        out.copy_from_slice(&items);
        Ok(out)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok((A::from_value(v.index(0)?)?, B::from_value(v.index(1)?)?))
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Deterministic key order keeps serialized indexes byte-stable.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Value::Map(
            keys.into_iter()
                .map(|k| (k.clone(), self[k].to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
                .collect(),
            other => Err(DeError::new(format!("expected map, got {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
                .collect(),
            other => Err(DeError::new(format!("expected map, got {other:?}"))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-9i64).to_value()).unwrap(), -9);
        assert_eq!(f64::from_value(&3.25f64.to_value()).unwrap(), 3.25);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            Vec::<u16>::from_value(&vec![1u16, 2, 3].to_value()).unwrap(),
            vec![1, 2, 3]
        );
        let arr = [7u64, 8, 9];
        assert_eq!(<[u64; 3]>::from_value(&arr.to_value()).unwrap(), arr);
    }

    #[test]
    fn maps_sorted_and_roundtrip() {
        let mut m = HashMap::new();
        m.insert("b".to_string(), 2u32);
        m.insert("a".to_string(), 1u32);
        let v = m.to_value();
        match &v {
            Value::Map(entries) => {
                assert_eq!(entries[0].0, "a");
                assert_eq!(entries[1].0, "b");
            }
            _ => panic!("map expected"),
        }
        assert_eq!(HashMap::<String, u32>::from_value(&v).unwrap(), m);
    }

    #[test]
    fn range_errors_are_reported() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(bool::from_value(&Value::U64(1)).is_err());
    }
}
