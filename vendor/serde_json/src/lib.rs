//! Offline stand-in for `serde_json`.
//!
//! Serializes the vendored serde's [`Value`] tree to JSON text and parses
//! it back with a small recursive-descent parser. Floats are written via
//! Rust's shortest-roundtrip `Display`, so `f64` values survive a
//! write/read cycle bit-exactly (NaN/Inf are rejected, as in JSON).

use serde::{DeError, Deserialize, Serialize, Value};

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes a value to a JSON string.
///
/// # Errors
///
/// Fails on non-finite floats, which JSON cannot represent.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Serializes a value to JSON bytes.
///
/// # Errors
///
/// Fails on non-finite floats, which JSON cannot represent.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    Ok(to_string(value)?.into_bytes())
}

/// Deserializes a value from JSON text.
///
/// # Errors
///
/// Fails on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing data at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

/// Deserializes a value from JSON bytes.
///
/// # Errors
///
/// Fails on invalid UTF-8, malformed JSON, or a shape mismatch with `T`.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

fn write_value(v: &Value, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if !f.is_finite() {
                return Err(Error::new("non-finite float is not valid JSON"));
            }
            let s = f.to_string();
            out.push_str(&s);
            // Keep the float/integer distinction through a roundtrip.
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `]` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `}}` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::new("lone high surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-scan from the byte we consumed so multi-byte
                    // UTF-8 sequences are appended whole.
                    let start = self.pos - 1;
                    while self.peek().is_some_and(|b| b != b'"' && b != b'\\') {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|e| Error::new(format!("invalid utf-8 in string: {e}")))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            let f: f64 = text
                .parse()
                .map_err(|_| Error::new(format!("invalid number `{text}`")))?;
            Ok(Value::F64(f))
        } else if let Some(stripped) = text.strip_prefix('-') {
            let n: i64 = stripped
                .parse::<i64>()
                .map(|v| -v)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))?;
            Ok(Value::I64(n))
        } else {
            let n: u64 = text
                .parse()
                .map_err(|_| Error::new(format!("invalid number `{text}`")))?;
            Ok(Value::U64(n))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(from_str::<u64>(&to_string(&42u64).unwrap()).unwrap(), 42);
        assert_eq!(from_str::<i32>(&to_string(&-7i32).unwrap()).unwrap(), -7);
        assert!(from_str::<bool>(&to_string(&true).unwrap()).unwrap());
        assert_eq!(
            from_str::<String>(&to_string("a \"b\"\n\\").unwrap()).unwrap(),
            "a \"b\"\n\\"
        );
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for f in [0.0f64, 1.5, -2.25, 0.1, 1e300, 5e-324, 2.2] {
            let s = to_string(&f).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), f, "{s}");
        }
        // Whole floats keep their float-ness through the text form.
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![vec![1u32, 2], vec![], vec![3]];
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<Vec<u32>>>(&s).unwrap(), v);

        let mut m = std::collections::HashMap::new();
        m.insert("alpha".to_string(), vec![1u64, 2, 3]);
        m.insert("beta".to_string(), vec![]);
        let bytes = to_vec(&m).unwrap();
        assert_eq!(
            from_slice::<std::collections::HashMap<String, Vec<u64>>>(&bytes).unwrap(),
            m
        );
    }

    #[test]
    fn unicode_strings_roundtrip() {
        let s = "héllo 世界 \u{1F600}";
        let json = to_string(&s.to_string()).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        // Escaped form parses too.
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "\u{1F600}");
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<Vec<u64>>("[1,2").is_err());
        assert!(from_str::<String>("\"abc").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }
}
