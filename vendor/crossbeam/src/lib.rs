//! Offline stand-in for `crossbeam`.
//!
//! Since Rust 1.63 the standard library ships structured scoped threads
//! (`std::thread::scope`), which cover everything this workspace needs
//! from crossbeam: spawning borrowing worker threads with a join-all
//! guarantee at scope exit. This crate simply re-exports them under the
//! `crossbeam::thread` paths call sites expect.

/// Scoped thread API (`crossbeam::thread::scope`).
pub mod thread {
    pub use std::thread::{scope, Scope, ScopedJoinHandle};
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let mut partials = vec![0u64; 2];
        super::thread::scope(|s| {
            for (i, out) in partials.iter_mut().enumerate() {
                let chunk = &data[i * 2..(i + 1) * 2];
                s.spawn(move || {
                    *out = chunk.iter().sum();
                });
            }
        });
        assert_eq!(partials, vec![3, 7]);
    }
}
